//! Trace capture and replay retiming.
//!
//! The measurement phase of the paper (Section 3) evaluates ~52 one-at-a-time
//! perturbations per application, and the Figure 2 study exhaustively sweeps
//! the d-cache geometry.  In an in-order, blocking LEON2 model, cache and
//! timing perturbations cannot change the instruction or memory-address
//! stream — only how many cycles each event costs.  So the stream only has to
//! be produced once: the first functional run records a compact execution
//! trace, and every perturbation is retimed by [`replay`] — no decode, no
//! ALU, no architectural state.
//!
//! # What the trace stores
//!
//! * [`Trace::ops`] — one [`TraceOp`] per eventful instruction (loads,
//!   stores, branches, multiplies, window rotations, …), with runs of
//!   event-free sequential fetches inside one 16-byte block (the minimum
//!   line size, so "same cache line" holds under every valid geometry)
//!   run-length compressed into a single record;
//! * [`Trace::mem`] — just the data-cache-relevant stream: load/store
//!   effective addresses and `save`/`restore` rotations with their
//!   (architecturally configuration-independent) stack pointers;
//! * [`Trace::summary`] — configuration-independent event *counts*;
//! * the capturing configuration and its cache statistics.
//!
//! # How replay retimes a configuration
//!
//! Total cycles decompose into `Σ events × cost(event, config)`, and only
//! cache hit/miss behaviour needs stateful re-simulation:
//!
//! 1. **i-cache**: if the replayed i-cache geometry equals the capturing
//!    one, its statistics are reused verbatim; otherwise the fetch stream in
//!    `ops` is re-walked through a fresh [`Cache`].
//! 2. **d-cache + window traps**: if both the d-cache geometry and the
//!    register-window count match, the captured statistics are reused;
//!    otherwise `mem` is re-walked — a resident-window automaton re-derives
//!    overflow/underflow traps for the window count under evaluation and
//!    expands each trap into its 16 spill/fill accesses.
//! 3. **everything else** (latency options, decode/jump/interlock, fast
//!    read/write, multiplier/divider, memory timing) is closed-form
//!    arithmetic over [`TraceSummary`] — O(1).
//!
//! A cost-table measurement of the paper's 52-variable space therefore runs
//! the full simulator once and replays 52 times, where 14 IU-only replays
//! are O(1), 28 walk only the memory stream, and 11 walk only the fetch
//! stream.
//!
//! Replay is bit-identical to full simulation — same final `cycles` and
//! cache statistics — which `tests/replay_equivalence.rs` asserts across the
//! benchmark suite × a grid of perturbations.  The `max_cycles` budget is a
//! bound on the run *total* in both engines: a run first pushed past the
//! budget by its very last instruction errors identically here and in
//! [`crate::Cpu::run`] (see `budget_boundary_is_identical_to_simulation`).
//!
//! Traces are plain data (`Send + Sync`): one captured trace is shared
//! read-only by every replay worker of a measurement campaign.

use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::cache::{Cache, CacheStats, TagCache};
use crate::config::{CacheConfig, LeonConfig};
use crate::error::SimError;
use crate::profiler::Stats;

/// Process-wide count of trace-stream walks: one tick per pass over a trace's
/// record or memory stream, whether it re-simulates one cache model (the
/// per-config [`replay`] path) or a whole span of behavior classes at once
/// (the batched [`ReplayBatch`] path).  Closed-form retimes never walk and
/// never tick.
///
/// This is the batched engine's headline counter, next to
/// `workloads::guest_instructions_executed` and
/// `workloads::trace_payload_bytes_read`: a batched 52-variable cost-table
/// measurement must perform at most one walk per distinct behavior class —
/// and exactly one pass per stream when the classes are not partitioned
/// across workers — which `tests/batch_walk_budget.rs` asserts against
/// deltas of this counter.
static TRACE_WALKS: AtomicU64 = AtomicU64::new(0);

/// Total trace-stream walks performed so far by this process.  Monotonic;
/// compare deltas rather than resetting, so concurrent measurements cannot
/// clobber each other.
pub fn trace_walks_performed() -> u64 {
    TRACE_WALKS.load(Ordering::Relaxed)
}

/// Record one pass over a trace stream.
fn record_trace_walk() {
    TRACE_WALKS.fetch_add(1, Ordering::Relaxed);
}

/// Process-wide count of trace *segments* walked: one tick per segment
/// processed by a segmented span walker ([`MemSpanWalker`] /
/// [`FetchSpanWalker`]), whichever engine drives it.  A full span walk over
/// a trace with S segments ticks this S times (and [`TRACE_WALKS`] once), so
/// the segment-level budget of a batched measurement is
/// `classes × segments`, and a fused Figure 2 memory pass is exactly
/// `segments` — `tests/batch_walk_budget.rs` asserts both against deltas of
/// this counter.
static TRACE_SEGMENTS: AtomicU64 = AtomicU64::new(0);

/// Total trace segments walked so far by this process.  Monotonic; compare
/// deltas, as with [`trace_walks_performed`].
pub fn trace_segments_walked() -> u64 {
    TRACE_SEGMENTS.load(Ordering::Relaxed)
}

/// Record one segment processed by a span walker.
fn record_segment_walk() {
    TRACE_SEGMENTS.fetch_add(1, Ordering::Relaxed);
}

/// Flag bits of one [`TraceOp`].  A bit records that the *event occurred* in
/// the instruction stream; whether and how many cycles it costs is decided at
/// replay time from the configuration under evaluation.  A record with no
/// flag bits is a compressed run of `aux` event-free sequential fetches.
pub mod flags {
    /// The instruction uses a slow-decode format (`sethi`/`save`/`restore`/
    /// `jmpl`); costs one extra cycle unless fast decode is enabled.
    pub const SLOW_DECODE: u16 = 1 << 0;
    /// The instruction consumes the destination of the immediately preceding
    /// load (load-use interlock); costs `load_delay` cycles.
    pub const LOAD_USE: u16 = 1 << 1;
    /// A conditional branch immediately following an icc-setting instruction;
    /// costs one cycle when the ICC-hold interlock is configured.
    pub const ICC_BRANCH: u16 = 1 << 2;
    /// Hardware multiply.
    pub const MUL: u16 = 1 << 3;
    /// Hardware divide.
    pub const DIV: u16 = 1 << 4;
    /// Memory load; `aux` holds the effective address.
    pub const LOAD: u16 = 1 << 5;
    /// Memory store; `aux` holds the effective address.
    pub const STORE: u16 = 1 << 6;
    /// Conditional branch.
    pub const BRANCH: u16 = 1 << 7;
    /// The branch was taken (fetch refill cycle).
    pub const TAKEN: u16 = 1 << 8;
    /// Call or indirect jump (`call`/`jmpl` address-generation cycles).
    pub const CALL: u16 = 1 << 9;
    /// Register-window rotation forward (`save`); `aux` holds the
    /// (architectural, configuration-independent) post-save stack pointer a
    /// spill would write through.
    pub const SAVE: u16 = 1 << 10;
    /// Register-window rotation backward (`restore`); `aux` holds the
    /// post-restore stack pointer a fill would read through.
    pub const RESTORE: u16 = 1 << 11;
}

/// One trace record: a single eventful instruction, or a compressed run of
/// event-free sequential fetches when `flags == 0`.
///
/// 12 bytes per record: the fetch address (for the i-cache), an event
/// bitmask, and one auxiliary word (load/store effective address, save/
/// restore stack pointer, or the run length of a compressed fetch run).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// Program counter of the (first) fetch.
    pub pc: u32,
    /// Event bits from [`flags`]; `0` marks a compressed fetch run.
    pub flags: u16,
    /// Effective address (loads/stores), trap stack pointer (save/restore),
    /// or run length in instructions (compressed fetch runs).
    pub aux: u32,
}

impl TraceOp {
    /// A single event-free fetch (a run of length 1).
    pub fn fetch(pc: u32) -> TraceOp {
        TraceOp { pc, flags: 0, aux: 1 }
    }

    /// Dynamic instructions this record retires.
    pub fn instructions(&self) -> u64 {
        if self.flags == 0 {
            self.aux as u64
        } else {
            1
        }
    }
}

/// The data-cache-relevant events, extracted into their own dense stream so
/// that d-cache and register-window perturbations replay without touching
/// the (much longer) fetch stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemOp {
    /// Data-cache read at this effective address.
    Load(u32),
    /// Data-cache write at this effective address.
    Store(u32),
    /// Window rotation forward; spills write through this stack pointer when
    /// the replayed window file overflows.
    Save(u32),
    /// Window rotation backward; fills read through this stack pointer when
    /// the replayed window file underflows.
    Restore(u32),
}

/// Configuration-independent event counts of a captured run: everything the
/// cycle model charges for, minus the cache behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Dynamic instructions.
    pub instructions: u64,
    /// Instructions with a slow-decode format.
    pub slow_decode: u64,
    /// Load-use interlock occurrences.
    pub load_use: u64,
    /// Branches immediately following an icc-setting instruction.
    pub icc_branch: u64,
    /// Hardware multiplies.
    pub mul_ops: u64,
    /// Hardware divides.
    pub div_ops: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Taken conditional branches.
    pub taken_branches: u64,
    /// Calls and indirect jumps.
    pub calls: u64,
    /// `save` rotations.
    pub saves: u64,
    /// `restore` rotations.
    pub restores: u64,
}

/// Target number of records per trace segment (the "fixed-size-ish" cut):
/// large enough that per-segment checkpoint and index overhead is noise,
/// small enough that a large trace yields dozens of independently walkable
/// units for intra-trace parallelism.
pub const SEGMENT_TARGET_OPS: usize = 1 << 16;

/// Marker flag of a folded-stream item (bit 63): the item is a
/// `save`/`restore` window rotation, not a load/store run leader.
const FOLD_MARKER_BIT: u64 = 1 << 63;

/// On a marker item: set for `restore`, clear for `save`.  The low 32 bits
/// hold the (configuration-independent) trap stack pointer either way.
const FOLD_RESTORE_BIT: u64 = 1 << 32;

/// [`SegmentMeta::fold_carry`] sentinel: no fold was in flight at the
/// segment boundary.  A real carry is a 16-byte line number (`addr >> 4`,
/// at most `2^28 - 1`), so the sentinel is unambiguous.
const FOLD_NONE: u32 = u32::MAX;

/// Per-segment entry checkpoint of a [`Trace`]: everything needed to decode
/// and walk one segment without touching its predecessors.  Deliberately
/// cache-independent — cache tag state chains through the span walkers — the
/// checkpoint pins the *stream* state at segment entry: per-stream record
/// offsets, the retired-instruction (cycle-offset) prefix, the capturing
/// configuration's resident-window automaton state, and the capture-fold
/// run-compression carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentMeta {
    /// First record of this segment in [`Trace::ops`].
    pub ops_start: usize,
    /// First event of this segment in [`Trace::mem`] (in-memory offset; the
    /// serialised index stores the folded offset instead, from which this is
    /// re-derived on decode).
    pub mem_start: usize,
    /// First item of this segment in [`Trace::folded`].
    pub folded_start: usize,
    /// Dynamic instructions retired before this segment (the segment's
    /// configuration-independent cycle/instruction offset).
    pub instructions_before: u64,
    /// Resident-window automaton state at segment entry *on the capturing
    /// configuration* (format completeness; replay automata for other window
    /// counts chain through the span walkers).
    pub resident_entry: u32,
    /// 16-byte line a capture-time fold would have continued across this
    /// boundary ([`FOLD_NONE`] when none): stored folds are split at every
    /// boundary so segments decode independently, and the carry records what
    /// was split.
    pub fold_carry: u32,
}

/// Build the segment checkpoints and the capture-folded memory stream for a
/// record stream cut at `boundaries` (record indices; first must be 0,
/// strictly increasing, all within the stream).
///
/// The folded stream is the capture-side pre-computation of the batched
/// walk's guaranteed-hit elision: an access that strictly-consecutively
/// follows a **read** of its own 16-byte line folds into the leader's run
/// count (a write never establishes presence, so write leaders carry no
/// run).  Stored folds split at every `save`/`restore` marker — whether the
/// marker traps depends on the replayed window count, so folding across it
/// would be unsound — and at every segment boundary, so each segment's items
/// stand alone; the walk re-folds across non-trapping markers at run time,
/// recovering the monolithic elision exactly.
fn derive_segments(
    ops: &[TraceOp],
    boundaries: &[usize],
    nwindows: u32,
) -> (Vec<SegmentMeta>, Vec<u64>) {
    let mut segments = Vec::with_capacity(boundaries.len());
    let mut folded: Vec<u64> = Vec::new();
    let mut mem_index = 0usize;
    let mut instructions = 0u64;
    let mut resident: u32 = 1;
    let mut run_line: Option<u32> = None;

    let fold_push = |folded: &mut Vec<u64>, run_line: &mut Option<u32>, addr: u32, write: bool| {
        if *run_line == Some(addr >> 4) {
            *folded.last_mut().expect("a run leader precedes every extension") +=
                1 << TagCache::MEM_RUN_SHIFT;
        } else {
            folded.push(addr as u64 | if write { TagCache::WRITE_BIT } else { 0 });
            *run_line = (!write).then(|| addr >> 4);
        }
    };

    for (index, &start) in boundaries.iter().enumerate() {
        let end = boundaries.get(index + 1).copied().unwrap_or(ops.len());
        segments.push(SegmentMeta {
            ops_start: start,
            mem_start: mem_index,
            folded_start: folded.len(),
            instructions_before: instructions,
            resident_entry: resident,
            fold_carry: run_line.unwrap_or(FOLD_NONE),
        });
        // a stored fold never crosses a segment boundary, so `folded_start`
        // always aligns with `ops_start` (the split is recorded as the carry)
        run_line = None;
        for op in &ops[start..end] {
            instructions += op.instructions();
            if op.flags == 0 {
                continue;
            }
            if op.flags & flags::LOAD != 0 {
                fold_push(&mut folded, &mut run_line, op.aux, false);
                mem_index += 1;
            }
            if op.flags & flags::STORE != 0 {
                fold_push(&mut folded, &mut run_line, op.aux, true);
                mem_index += 1;
            }
            if op.flags & flags::SAVE != 0 {
                folded.push(FOLD_MARKER_BIT | op.aux as u64);
                run_line = None;
                mem_index += 1;
                if resident < nwindows - 1 {
                    resident += 1;
                }
            }
            if op.flags & flags::RESTORE != 0 {
                folded.push(FOLD_MARKER_BIT | FOLD_RESTORE_BIT | op.aux as u64);
                run_line = None;
                mem_index += 1;
                if resident > 1 {
                    resident -= 1;
                }
            }
        }
    }
    (segments, folded)
}

/// A captured execution trace: the full timing-relevant event stream of one
/// program run, independent of every Figure 1 parameter (including the
/// register-window count — window traps are re-derived at replay time).
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Per-instruction records with fetch-run compression, in execution order.
    pub ops: Vec<TraceOp>,
    /// The data-cache/window event stream (see [`MemOp`]), in execution order.
    pub mem: Vec<MemOp>,
    /// The capture-folded memory stream: one item per run leader or window
    /// marker (see [`derive_segments`]), segment-aligned.  The batched
    /// walkers consume this instead of re-deriving the guaranteed-hit
    /// elision from [`Trace::mem`] on every batch build.
    pub folded: Vec<u64>,
    /// Segment checkpoints, in segment order ([`SegmentMeta`]); every trace
    /// with records has at least one segment.
    pub segments: Vec<SegmentMeta>,
    /// Configuration-independent event counts.
    pub summary: TraceSummary,
    /// The configuration the trace was captured on.
    pub captured: LeonConfig,
    /// I-cache statistics of the capturing run (reused verbatim when the
    /// replayed i-cache geometry matches).
    pub base_icache: CacheStats,
    /// D-cache statistics of the capturing run (include window-trap traffic).
    pub base_dcache: CacheStats,
    /// Window overflow traps of the capturing run.
    pub base_overflows: u64,
    /// Window underflow traps of the capturing run.
    pub base_underflows: u64,
}

impl Trace {
    /// Number of records (compressed runs count once).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Dynamic instruction count of the captured run.
    pub fn instructions(&self) -> u64 {
        self.summary.instructions
    }

    /// Approximate in-memory footprint of the trace buffers, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.ops.len() * std::mem::size_of::<TraceOp>()
            + self.mem.len() * std::mem::size_of::<MemOp>()
            + self.folded.len() * std::mem::size_of::<u64>()
            + self.segments.len() * std::mem::size_of::<SegmentMeta>()
    }

    /// Number of segments (0 only for an empty trace).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Record range of segment `seg` in [`Trace::ops`].
    fn ops_range(&self, seg: usize) -> Range<usize> {
        let start = self.segments[seg].ops_start;
        let end = self.segments.get(seg + 1).map_or(self.ops.len(), |s| s.ops_start);
        start..end
    }

    /// Item range of segment `seg` in [`Trace::folded`].
    fn folded_range(&self, seg: usize) -> Range<usize> {
        let start = self.segments[seg].folded_start;
        let end = self.segments.get(seg + 1).map_or(self.folded.len(), |s| s.folded_start);
        start..end
    }

    /// `true` when `boundaries` is a valid segmentation of `records` records:
    /// empty for an empty trace, otherwise starting at 0, strictly
    /// increasing, and within the stream.
    fn valid_boundaries(records: usize, boundaries: &[usize]) -> bool {
        if records == 0 {
            return boundaries.is_empty();
        }
        boundaries.first() == Some(&0)
            && boundaries.windows(2).all(|w| w[0] < w[1])
            && boundaries.iter().all(|&b| b < records)
    }

    /// The default segmentation: a cut every [`SEGMENT_TARGET_OPS`] records.
    fn default_boundaries(records: usize) -> Vec<usize> {
        (0..records).step_by(SEGMENT_TARGET_OPS).collect()
    }

    /// Re-cut the trace at the given record boundaries (first must be 0,
    /// strictly increasing, all `< ops.len()`; empty only for an empty
    /// trace), rebuilding the segment checkpoints and the capture-folded
    /// stream.  Replay results are independent of the segmentation — the
    /// segmented-replay proptest exercises exactly this API.
    ///
    /// # Panics
    ///
    /// Panics when `boundaries` is not a valid segmentation.
    pub fn resegment_at(&mut self, boundaries: &[usize]) {
        assert!(
            Trace::valid_boundaries(self.ops.len(), boundaries),
            "segment boundaries must start at 0, increase strictly and stay in-range"
        );
        let (segments, folded) =
            derive_segments(&self.ops, boundaries, self.captured.iu.reg_windows as u32);
        self.segments = segments;
        self.folded = folded;
    }

    /// Build the derived streams (`mem`, `summary`) from a raw record stream.
    ///
    /// The derived streams are a pure function of `ops`, so they are *not*
    /// serialised by [`Trace::to_bytes`]: a decoded trace rebuilds them here,
    /// which both shrinks the on-disk format and makes an internally
    /// inconsistent (ops vs. mem/summary) trace unrepresentable.
    fn derive_streams(ops: &[TraceOp]) -> (TraceSummary, Vec<MemOp>) {
        let mut summary = TraceSummary::default();
        let mut mem = Vec::new();
        for op in ops {
            let f = op.flags;
            if f == 0 {
                summary.instructions += op.aux as u64;
                continue;
            }
            summary.instructions += 1;
            summary.slow_decode += (f & flags::SLOW_DECODE != 0) as u64;
            summary.load_use += (f & flags::LOAD_USE != 0) as u64;
            summary.icc_branch += (f & flags::ICC_BRANCH != 0) as u64;
            summary.mul_ops += (f & flags::MUL != 0) as u64;
            summary.div_ops += (f & flags::DIV != 0) as u64;
            summary.branches += (f & flags::BRANCH != 0) as u64;
            summary.taken_branches += (f & flags::TAKEN != 0) as u64;
            summary.calls += (f & flags::CALL != 0) as u64;
            if f & flags::LOAD != 0 {
                summary.loads += 1;
                mem.push(MemOp::Load(op.aux));
            }
            if f & flags::STORE != 0 {
                summary.stores += 1;
                mem.push(MemOp::Store(op.aux));
            }
            if f & flags::SAVE != 0 {
                summary.saves += 1;
                mem.push(MemOp::Save(op.aux));
            }
            if f & flags::RESTORE != 0 {
                summary.restores += 1;
                mem.push(MemOp::Restore(op.aux));
            }
        }
        (summary, mem)
    }

    /// Build the derived streams (`mem`, `summary`, segments, folded) from a
    /// raw record stream and the capturing run's results.
    fn assemble(ops: Vec<TraceOp>, captured: &LeonConfig, stats: &Stats) -> Trace {
        let (summary, mem) = Trace::derive_streams(&ops);
        debug_assert_eq!(summary.instructions, stats.instructions);
        debug_assert_eq!(summary.loads, stats.loads);
        debug_assert_eq!(summary.stores, stats.stores);
        debug_assert_eq!(summary.branches, stats.branches);
        let boundaries = Trace::default_boundaries(ops.len());
        let (segments, folded) =
            derive_segments(&ops, &boundaries, captured.iu.reg_windows as u32);
        Trace {
            ops,
            mem,
            folded,
            segments,
            summary,
            captured: *captured,
            base_icache: stats.icache,
            base_dcache: stats.dcache,
            base_overflows: stats.window_overflows,
            base_underflows: stats.window_underflows,
        }
    }
}

// ---------------------------------------------------------------------------
// Versioned binary serialization
// ---------------------------------------------------------------------------

/// Version number of the binary trace format produced by [`Trace::to_bytes`].
///
/// Bump this whenever the record layout, the captured-configuration encoding
/// or the semantics of any serialised field change: persisted traces carry
/// the version they were written with, and [`Trace::from_bytes`] refuses to
/// decode any *newer* version, so stale artifacts fall back to recapture
/// instead of silently mis-replaying.  Version 2 adds the segment index, the
/// stored summary and the capture-folded payload; version-1 traces
/// ([`Trace::to_bytes_v1`]) still decode, with the segmentation re-derived.
pub const TRACE_FORMAT_VERSION: u32 = 2;

/// The previous (monolithic, unsegmented) format version, still decodable.
const TRACE_FORMAT_V1: u32 = 1;

/// Magic bytes opening every serialised trace.
const TRACE_MAGIC: [u8; 4] = *b"LTRC";

/// Error decoding a serialised trace (wrong magic/version, checksum
/// mismatch, truncation, or a malformed field).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceCodecError(String);

impl TraceCodecError {
    fn new(message: impl Into<String>) -> TraceCodecError {
        TraceCodecError(message.into())
    }
}

impl std::fmt::Display for TraceCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace decode error: {}", self.0)
    }
}

impl std::error::Error for TraceCodecError {}

/// The FNV-1a offset basis: the initial state of [`fnv1a64`].
pub const FNV1A64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Continue a 64-bit FNV-1a hash from `hash` over `bytes` (for incremental
/// multi-field hashing; start from [`FNV1A64_OFFSET`]).
pub fn fnv1a64_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// 64-bit FNV-1a over a byte stream — the integrity checksum of the binary
/// trace format (fast, dependency-free, and plenty for corruption detection;
/// this is not a cryptographic guarantee).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_extend(FNV1A64_OFFSET, bytes)
}

struct ByteWriter(Vec<u8>);

impl ByteWriter {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
}

struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceCodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| TraceCodecError::new("unexpected end of input"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, TraceCodecError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, TraceCodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, TraceCodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, TraceCodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bool(&mut self) -> Result<bool, TraceCodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(TraceCodecError::new(format!("invalid bool byte {other}"))),
        }
    }
}

fn encode_cache_config(w: &mut ByteWriter, c: &CacheConfig) {
    w.u8(c.ways);
    w.u32(c.way_kb);
    w.u8(c.line_words);
    w.u8(match c.replacement {
        crate::config::ReplacementPolicy::Random => 0,
        crate::config::ReplacementPolicy::Lrr => 1,
        crate::config::ReplacementPolicy::Lru => 2,
    });
}

fn decode_cache_config(r: &mut ByteReader) -> Result<CacheConfig, TraceCodecError> {
    Ok(CacheConfig {
        ways: r.u8()?,
        way_kb: r.u32()?,
        line_words: r.u8()?,
        replacement: match r.u8()? {
            0 => crate::config::ReplacementPolicy::Random,
            1 => crate::config::ReplacementPolicy::Lrr,
            2 => crate::config::ReplacementPolicy::Lru,
            other => {
                return Err(TraceCodecError::new(format!("invalid replacement tag {other}")))
            }
        },
    })
}

fn encode_config(w: &mut ByteWriter, c: &LeonConfig) {
    encode_cache_config(w, &c.icache);
    encode_cache_config(w, &c.dcache);
    w.u8(c.dcache_fast_read as u8);
    w.u8(c.dcache_fast_write as u8);
    w.u8(c.iu.fast_jump as u8);
    w.u8(c.iu.icc_hold as u8);
    w.u8(c.iu.fast_decode as u8);
    w.u8(c.iu.load_delay);
    w.u8(c.iu.reg_windows);
    w.u8(match c.iu.divider {
        crate::config::Divider::Radix2 => 0,
        crate::config::Divider::None => 1,
    });
    let mul = crate::config::Multiplier::ALL
        .iter()
        .position(|&m| m == c.iu.multiplier)
        .expect("every multiplier variant is listed in Multiplier::ALL");
    w.u8(mul as u8);
    w.u8(c.synthesis.infer_mult_div as u8);
    w.u32(c.memory.read_first);
    w.u32(c.memory.read_burst);
    w.u32(c.memory.write);
    w.u32(c.clock_mhz);
}

fn decode_config(r: &mut ByteReader) -> Result<LeonConfig, TraceCodecError> {
    let icache = decode_cache_config(r)?;
    let dcache = decode_cache_config(r)?;
    let dcache_fast_read = r.bool()?;
    let dcache_fast_write = r.bool()?;
    let fast_jump = r.bool()?;
    let icc_hold = r.bool()?;
    let fast_decode = r.bool()?;
    let load_delay = r.u8()?;
    let reg_windows = r.u8()?;
    let divider = match r.u8()? {
        0 => crate::config::Divider::Radix2,
        1 => crate::config::Divider::None,
        other => return Err(TraceCodecError::new(format!("invalid divider tag {other}"))),
    };
    let mul_tag = r.u8()? as usize;
    let multiplier = *crate::config::Multiplier::ALL
        .get(mul_tag)
        .ok_or_else(|| TraceCodecError::new(format!("invalid multiplier tag {mul_tag}")))?;
    let infer_mult_div = r.bool()?;
    let memory = crate::config::MemoryTiming {
        read_first: r.u32()?,
        read_burst: r.u32()?,
        write: r.u32()?,
    };
    let clock_mhz = r.u32()?;
    Ok(LeonConfig {
        icache,
        dcache,
        dcache_fast_read,
        dcache_fast_write,
        iu: crate::config::IuConfig {
            fast_jump,
            icc_hold,
            fast_decode,
            load_delay,
            reg_windows,
            divider,
            multiplier,
        },
        synthesis: crate::config::SynthesisConfig { infer_mult_div },
        memory,
        clock_mhz,
    })
}

fn encode_cache_stats(w: &mut ByteWriter, s: &CacheStats) {
    w.u64(s.read_hits);
    w.u64(s.read_misses);
    w.u64(s.write_hits);
    w.u64(s.write_misses);
}

fn decode_cache_stats(r: &mut ByteReader) -> Result<CacheStats, TraceCodecError> {
    Ok(CacheStats {
        read_hits: r.u64()?,
        read_misses: r.u64()?,
        write_hits: r.u64()?,
        write_misses: r.u64()?,
    })
}

/// One entry of the serialised v2 segment index: the [`SegmentMeta`]
/// checkpoint plus where the segment's payload lives and its integrity
/// checksum, so a streaming reader can locate, fetch and verify any segment
/// independently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentInfo {
    /// First record of the segment in the record stream.
    pub ops_start: u64,
    /// First item of the segment in the folded stream.
    pub folded_start: u64,
    /// Dynamic instructions retired before the segment.
    pub instructions_before: u64,
    /// Capture-config resident-window automaton state at entry.
    pub resident_entry: u32,
    /// Run-compression carry split at the boundary ([`FOLD_NONE`] if none).
    pub fold_carry: u32,
    /// Byte offset of the segment's payload, relative to the start of the
    /// payload region (just after the index).
    pub payload_offset: u64,
    /// FNV-1a checksum over the segment's payload bytes.
    pub checksum: u64,
}

/// Serialised size of one [`SegmentInfo`] index entry.
const SEGMENT_INFO_LEN: usize = 48;

/// The header of a serialised trace, decodable without touching the record
/// payload (see [`Trace::peek_header`]).  For version-2 traces this includes
/// the stored [`TraceSummary`] and the segment index; for version-1 traces
/// `summary` is `None` and `segments` is empty (the segmentation is
/// re-derived on full decode).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceHeader {
    /// The serialised format version ([`TRACE_FORMAT_VERSION`] or
    /// [`TRACE_FORMAT_V1`] on a successful peek).
    pub version: u32,
    /// The configuration the trace was captured on.
    pub captured: LeonConfig,
    /// I-cache statistics of the capturing run.
    pub base_icache: CacheStats,
    /// D-cache statistics of the capturing run.
    pub base_dcache: CacheStats,
    /// Window overflow traps of the capturing run.
    pub base_overflows: u64,
    /// Window underflow traps of the capturing run.
    pub base_underflows: u64,
    /// Number of trace records in the (unread) record stream.
    pub records: u64,
    /// Number of items in the folded stream (0 for v1 headers).
    pub folded: u64,
    /// The stored event summary (v2 only; v1 derives it on full decode).
    pub summary: Option<TraceSummary>,
    /// The segment index (empty for v1 headers).
    pub segments: Vec<SegmentInfo>,
}

fn encode_summary(w: &mut ByteWriter, s: &TraceSummary) {
    for v in [
        s.instructions,
        s.slow_decode,
        s.load_use,
        s.icc_branch,
        s.mul_ops,
        s.div_ops,
        s.loads,
        s.stores,
        s.branches,
        s.taken_branches,
        s.calls,
        s.saves,
        s.restores,
    ] {
        w.u64(v);
    }
}

fn decode_summary(r: &mut ByteReader) -> Result<TraceSummary, TraceCodecError> {
    Ok(TraceSummary {
        instructions: r.u64()?,
        slow_decode: r.u64()?,
        load_use: r.u64()?,
        icc_branch: r.u64()?,
        mul_ops: r.u64()?,
        div_ops: r.u64()?,
        loads: r.u64()?,
        stores: r.u64()?,
        branches: r.u64()?,
        taken_branches: r.u64()?,
        calls: r.u64()?,
        saves: r.u64()?,
        restores: r.u64()?,
    })
}

/// Parse a serialised trace header (fixed fields, and for v2 the stored
/// summary, stream counts and segment index) from `r`, leaving `r` at the
/// first payload byte.  Structural payload-length validation is the
/// caller's job (via [`validate_segment_index`]).
fn parse_header(r: &mut ByteReader) -> Result<TraceHeader, TraceCodecError> {
    if r.take(4)? != TRACE_MAGIC {
        return Err(TraceCodecError::new("bad magic (not a serialised trace)"));
    }
    let version = r.u32()?;
    if version != TRACE_FORMAT_VERSION && version != TRACE_FORMAT_V1 {
        return Err(TraceCodecError::new(format!(
            "unsupported trace format version {version} (expected {TRACE_FORMAT_VERSION})"
        )));
    }
    let captured = decode_config(r)?;
    captured
        .validate()
        .map_err(|e| TraceCodecError::new(format!("invalid captured configuration: {e}")))?;
    let base_icache = decode_cache_stats(r)?;
    let base_dcache = decode_cache_stats(r)?;
    let base_overflows = r.u64()?;
    let base_underflows = r.u64()?;
    let records = r.u64()?;
    let mut header = TraceHeader {
        version,
        captured,
        base_icache,
        base_dcache,
        base_overflows,
        base_underflows,
        records,
        folded: 0,
        summary: None,
        segments: Vec::new(),
    };
    if version == TRACE_FORMAT_V1 {
        return Ok(header);
    }
    header.summary = Some(decode_summary(r)?);
    header.folded = r.u64()?;
    let count = r.u32()? as usize;
    let mut segments = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        segments.push(SegmentInfo {
            ops_start: r.u64()?,
            folded_start: r.u64()?,
            instructions_before: r.u64()?,
            resident_entry: r.u32()?,
            fold_carry: r.u32()?,
            payload_offset: r.u64()?,
            checksum: r.u64()?,
        });
    }
    header.segments = segments;
    Ok(header)
}

/// Byte length of segment `i`'s payload per the index in `header`.
fn segment_payload_len(header: &TraceHeader, i: usize) -> (u64, u64, u64) {
    let info = &header.segments[i];
    let ops_end = header.segments.get(i + 1).map_or(header.records, |s| s.ops_start);
    let folded_end = header.segments.get(i + 1).map_or(header.folded, |s| s.folded_start);
    let recs = ops_end.wrapping_sub(info.ops_start);
    let folded = folded_end.wrapping_sub(info.folded_start);
    (recs, folded, recs.wrapping_mul(10).wrapping_add(folded.wrapping_mul(8)))
}

/// Structurally validate a parsed header's segment index — offsets start at
/// 0 and increase monotonically, per-segment payloads tile the payload
/// region contiguously — and return the total payload byte count the body
/// must still hold.  This is the `store doctor` half of the v2 integrity
/// contract (per-segment checksums are verified where the payload is
/// actually read: [`Trace::from_bytes`] and [`StreamedTrace::load_segment`]).
fn validate_segment_index(header: &TraceHeader) -> Result<u64, TraceCodecError> {
    if header.version == TRACE_FORMAT_V1 {
        return header
            .records
            .checked_mul(10)
            .ok_or_else(|| TraceCodecError::new("record count overflows the payload size"));
    }
    let segs = &header.segments;
    if header.records == 0 {
        if !segs.is_empty() || header.folded != 0 {
            return Err(TraceCodecError::new("an empty trace must have an empty segment index"));
        }
        return Ok(0);
    }
    if segs.is_empty() {
        return Err(TraceCodecError::new("a non-empty trace must have at least one segment"));
    }
    if segs[0].ops_start != 0 || segs[0].folded_start != 0 || segs[0].payload_offset != 0 {
        return Err(TraceCodecError::new("segment index must start at offset 0"));
    }
    let mut expected_offset: u64 = 0;
    for i in 0..segs.len() {
        let info = &segs[i];
        let ops_end = segs.get(i + 1).map_or(header.records, |s| s.ops_start);
        let folded_end = segs.get(i + 1).map_or(header.folded, |s| s.folded_start);
        if ops_end <= info.ops_start || ops_end > header.records {
            return Err(TraceCodecError::new(format!(
                "segment {i}: record offsets are not strictly increasing"
            )));
        }
        if folded_end < info.folded_start || folded_end > header.folded {
            return Err(TraceCodecError::new(format!(
                "segment {i}: folded offsets are not monotone"
            )));
        }
        if info.payload_offset != expected_offset {
            return Err(TraceCodecError::new(format!(
                "segment {i}: payload offset {} does not tile the payload (expected \
                 {expected_offset})",
                info.payload_offset
            )));
        }
        let (_, _, len) = segment_payload_len(header, i);
        expected_offset = expected_offset
            .checked_add(len)
            .ok_or_else(|| TraceCodecError::new("segment payload sizes overflow"))?;
    }
    Ok(expected_offset)
}

impl Trace {
    /// Serialise the trace into the versioned binary format (version 2).
    ///
    /// Layout (all integers little-endian): the magic `LTRC`, the
    /// [`TRACE_FORMAT_VERSION`], the capturing configuration, the capturing
    /// run's cache statistics and window-trap counts, the record count, the
    /// stored [`TraceSummary`], the folded-item count, the segment index
    /// (one [`SegmentInfo`] per segment, with per-segment payload offsets
    /// and checksums), the per-segment payloads (each segment's records at
    /// 10 bytes apiece followed by its capture-folded items at 8), and a
    /// trailing 64-bit FNV-1a checksum over everything before it.  `mem` is
    /// rebuilt on decode, not stored; the folded stream *is* stored, so a
    /// decoder (streaming or not) never re-derives the guaranteed-hit
    /// elision.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = ByteWriter(Vec::with_capacity(self.ops.len() * 10 + self.folded.len() * 8));
        let mut locations: Vec<(u64, u64)> = Vec::with_capacity(self.segments.len());
        for seg in 0..self.segments.len() {
            let start = payload.0.len();
            for op in &self.ops[self.ops_range(seg)] {
                payload.u32(op.pc);
                payload.u16(op.flags);
                payload.u32(op.aux);
            }
            for &item in &self.folded[self.folded_range(seg)] {
                payload.u64(item);
            }
            locations.push((start as u64, fnv1a64(&payload.0[start..])));
        }

        let prefix = 252 + self.segments.len() * SEGMENT_INFO_LEN;
        let mut w = ByteWriter(Vec::with_capacity(prefix + payload.0.len() + 8));
        w.0.extend_from_slice(&TRACE_MAGIC);
        w.u32(TRACE_FORMAT_VERSION);
        encode_config(&mut w, &self.captured);
        encode_cache_stats(&mut w, &self.base_icache);
        encode_cache_stats(&mut w, &self.base_dcache);
        w.u64(self.base_overflows);
        w.u64(self.base_underflows);
        w.u64(self.ops.len() as u64);
        encode_summary(&mut w, &self.summary);
        w.u64(self.folded.len() as u64);
        w.u32(self.segments.len() as u32);
        for (meta, &(offset, checksum)) in self.segments.iter().zip(&locations) {
            w.u64(meta.ops_start as u64);
            w.u64(meta.folded_start as u64);
            w.u64(meta.instructions_before);
            w.u32(meta.resident_entry);
            w.u32(meta.fold_carry);
            w.u64(offset);
            w.u64(checksum);
        }
        w.0.extend_from_slice(&payload.0);
        let checksum = fnv1a64(&w.0);
        w.u64(checksum);
        w.0
    }

    /// Serialise the trace into the previous, version-1 monolithic format
    /// (no segment index, no stored summary or folded stream).  Kept so the
    /// mixed-store path — v1 entries written by earlier releases must still
    /// load — stays testable, and as the migration writer's reference.
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        let mut w = ByteWriter(Vec::with_capacity(32 + self.ops.len() * 10 + 8));
        w.0.extend_from_slice(&TRACE_MAGIC);
        w.u32(TRACE_FORMAT_V1);
        encode_config(&mut w, &self.captured);
        encode_cache_stats(&mut w, &self.base_icache);
        encode_cache_stats(&mut w, &self.base_dcache);
        w.u64(self.base_overflows);
        w.u64(self.base_underflows);
        w.u64(self.ops.len() as u64);
        for op in &self.ops {
            w.u32(op.pc);
            w.u16(op.flags);
            w.u32(op.aux);
        }
        let checksum = fnv1a64(&w.0);
        w.u64(checksum);
        w.0
    }

    /// Decode only the fixed-size header of a serialised trace — O(header)
    /// regardless of how many records follow, because neither the record
    /// stream nor the trailing checksum is read.
    ///
    /// This is the *peek* half of the lazy-materialization contract: a store
    /// layer can check the format version, the capturing configuration and
    /// the record count of a multi-megabyte trace entry without paying the
    /// full decode (stream walk + checksum + derived-stream rebuild).  It is
    /// **not** an integrity check — a bit flip in the record stream passes
    /// `peek_header` and is only caught by [`Trace::from_bytes`] — so
    /// callers must still decode fully before trusting the records.
    pub fn peek_header(bytes: &[u8]) -> Result<TraceHeader, TraceCodecError> {
        if bytes.len() < TRACE_MAGIC.len() + 4 + 8 {
            return Err(TraceCodecError::new("input shorter than the fixed header"));
        }
        let body = &bytes[..bytes.len() - 8];
        let mut r = ByteReader { bytes: body, pos: 0 };
        let header = parse_header(&mut r)?;
        // the declared payload (v1: records × 10; v2: the tiled per-segment
        // payloads) must exactly match the input
        let payload = validate_segment_index(&header)?;
        if payload != (body.len() - r.pos) as u64 {
            return Err(TraceCodecError::new(format!(
                "record count {} does not match the remaining payload",
                header.records
            )));
        }
        Ok(header)
    }

    /// Structurally validate a serialised trace without decoding it: the
    /// header fields, the segment index (offset monotonicity, contiguous
    /// payload tiling, total length) and — for version 2 — every
    /// per-segment payload checksum.  Returns the parsed header.
    ///
    /// Cheaper than [`Trace::from_bytes`] (no record decode, no derived
    /// stream rebuild or cross-check), which makes it the right integrity
    /// pass for `store doctor`: it catches exactly the damage the streaming
    /// reader would trip over.  For version-1 traces this is header
    /// validation only (their single checksum is the whole-file one, which
    /// the store envelope already covers).
    pub fn validate_segments(bytes: &[u8]) -> Result<TraceHeader, TraceCodecError> {
        let header = Trace::peek_header(bytes)?;
        if header.version == TRACE_FORMAT_V1 {
            return Ok(header);
        }
        let total = validate_segment_index(&header)?;
        let base = bytes.len() - 8 - total as usize;
        for (i, info) in header.segments.iter().enumerate() {
            let (_, _, len) = segment_payload_len(&header, i);
            let start = base + info.payload_offset as usize;
            let computed = fnv1a64(&bytes[start..start + len as usize]);
            if computed != info.checksum {
                return Err(TraceCodecError::new(format!(
                    "segment {i} checksum mismatch: stored {:#018x}, computed {computed:#018x}",
                    info.checksum
                )));
            }
        }
        Ok(header)
    }

    /// Decode a trace serialised by [`Trace::to_bytes`].
    ///
    /// Fails — rather than ever producing a wrong trace — on a bad magic, a
    /// different format version, a checksum mismatch, truncated or trailing
    /// bytes, or any malformed field.  On success the decoded trace is
    /// exactly the one serialised (`mem` and `summary` are re-derived from
    /// the record stream).
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceCodecError> {
        if bytes.len() < TRACE_MAGIC.len() + 4 + 8 {
            return Err(TraceCodecError::new("input shorter than the fixed header"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        let actual = fnv1a64(body);
        if stored != actual {
            return Err(TraceCodecError::new(format!(
                "checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
            )));
        }

        let mut r = ByteReader { bytes: body, pos: 0 };
        let header = parse_header(&mut r)?;
        let payload = validate_segment_index(&header)?;
        if payload != (body.len() - r.pos) as u64 {
            return Err(TraceCodecError::new(format!(
                "record count {} does not match the remaining payload",
                header.records
            )));
        }

        let mut ops = Vec::with_capacity(header.records as usize);
        let mut stored_folded: Vec<u64> = Vec::with_capacity(header.folded as usize);
        if header.version == TRACE_FORMAT_V1 {
            for _ in 0..header.records {
                ops.push(TraceOp { pc: r.u32()?, flags: r.u16()?, aux: r.u32()? });
            }
        } else {
            // segment payloads tile the region in index order (validated
            // above), so a sequential read visits each one exactly
            for (i, info) in header.segments.iter().enumerate() {
                let (recs, folded, len) = segment_payload_len(&header, i);
                let seg_bytes = r.take(len as usize)?;
                let computed = fnv1a64(seg_bytes);
                if computed != info.checksum {
                    return Err(TraceCodecError::new(format!(
                        "segment {i} checksum mismatch: stored {:#018x}, computed \
                         {computed:#018x}",
                        info.checksum
                    )));
                }
                let mut sr = ByteReader { bytes: seg_bytes, pos: 0 };
                for _ in 0..recs {
                    ops.push(TraceOp { pc: sr.u32()?, flags: sr.u16()?, aux: sr.u32()? });
                }
                for _ in 0..folded {
                    stored_folded.push(sr.u64()?);
                }
            }
        }

        let (summary, mem) = Trace::derive_streams(&ops);
        let boundaries: Vec<usize> = if header.version == TRACE_FORMAT_V1 {
            Trace::default_boundaries(ops.len())
        } else {
            header.segments.iter().map(|s| s.ops_start as usize).collect()
        };
        let (segments, folded) =
            derive_segments(&ops, &boundaries, header.captured.iu.reg_windows as u32);

        // the stored derived data (summary, folded stream, checkpoints) must
        // match re-derivation from the record stream: a file can checksum
        // correctly and still be internally inconsistent, and the streaming
        // replay path trusts the stored form without re-deriving it
        if header.version != TRACE_FORMAT_V1 {
            if header.summary != Some(summary) {
                return Err(TraceCodecError::new(
                    "stored summary does not match the record stream",
                ));
            }
            if stored_folded != folded {
                return Err(TraceCodecError::new(
                    "stored folded stream does not match the record stream",
                ));
            }
            for (i, (meta, info)) in segments.iter().zip(&header.segments).enumerate() {
                if meta.folded_start as u64 != info.folded_start
                    || meta.instructions_before != info.instructions_before
                    || meta.resident_entry != info.resident_entry
                    || meta.fold_carry != info.fold_carry
                {
                    return Err(TraceCodecError::new(format!(
                        "segment {i} checkpoint does not match the record stream"
                    )));
                }
            }
        }

        Ok(Trace {
            ops,
            mem,
            folded,
            segments,
            summary,
            captured: header.captured,
            base_icache: header.base_icache,
            base_dcache: header.base_dcache,
            base_overflows: header.base_overflows,
            base_underflows: header.base_underflows,
        })
    }
}

thread_local! {
    /// Per-worker scratch model reused by the per-config walkers
    /// ([`walk_mem`], [`walk_fetches`]): a sweep over N geometries re-shapes
    /// one model N times ([`Cache::reconfigure`]) instead of allocating N
    /// line vectors.  Reconfiguring restores the exact just-constructed
    /// state, so reuse is invisible to the walk results.
    static WALK_SCRATCH: RefCell<Option<Cache>> = const { RefCell::new(None) };
}

/// Run `walk` on a scratch [`Cache`] shaped as `config` (fresh-state
/// semantics, reused allocation).
fn with_scratch_cache<R>(config: CacheConfig, walk: impl FnOnce(&mut Cache) -> R) -> R {
    WALK_SCRATCH.with(|slot| {
        let mut slot = slot.borrow_mut();
        let cache = slot.get_or_insert_with(|| Cache::new(config));
        cache.reconfigure(config);
        walk(cache)
    })
}

/// Re-walk the memory stream for a d-cache and/or window-count perturbation:
/// re-derives window traps with the resident-window automaton (mirroring
/// [`crate::regwin::RegisterWindows`]) and expands each trap into its 16
/// spill/fill accesses.  Returns the d-cache statistics plus trap counts.
fn walk_mem(trace: &Trace, config: &LeonConfig) -> (CacheStats, u64, u64) {
    record_trace_walk();
    with_scratch_cache(config.dcache, |dcache| {
        let nwindows = config.iu.reg_windows as u32;
        let mut resident: u32 = 1;
        let mut overflows: u64 = 0;
        let mut underflows: u64 = 0;
        for op in &trace.mem {
            match *op {
                MemOp::Load(addr) => {
                    dcache.read(addr);
                }
                MemOp::Store(addr) => {
                    dcache.write(addr);
                }
                MemOp::Save(sp) => {
                    if resident >= nwindows - 1 {
                        overflows += 1;
                        for i in 0..crate::cpu::WINDOW_TRAP_REGS {
                            dcache.write(sp.wrapping_sub(4 + i * 4));
                        }
                    } else {
                        resident += 1;
                    }
                }
                MemOp::Restore(sp) => {
                    if resident <= 1 {
                        underflows += 1;
                        for i in 0..crate::cpu::WINDOW_TRAP_REGS {
                            dcache.read(sp.wrapping_sub(4 + i * 4));
                        }
                    } else {
                        resident -= 1;
                    }
                }
            }
        }
        (dcache.stats(), overflows, underflows)
    })
}

/// Re-walk the fetch stream for an i-cache perturbation.
fn walk_fetches(trace: &Trace, icache_config: CacheConfig) -> CacheStats {
    record_trace_walk();
    with_scratch_cache(icache_config, |icache| {
        for op in &trace.ops {
            if op.flags == 0 {
                icache.read_run(op.pc, op.aux as u64 - 1);
            } else {
                icache.read(op.pc);
            }
        }
        icache.stats()
    })
}

/// Closed-form cycle reconstruction shared by [`replay`] and
/// [`ReplayBatch::finish`] (mirrors `Cpu::step`'s charges): given a
/// configuration's cache behaviour and window-trap counts, rebuild the exact
/// [`Stats`] a full run would produce, enforcing the cycle budget as a bound
/// on the run total.
fn reconstruct_stats(
    s: &TraceSummary,
    config: &LeonConfig,
    icache: CacheStats,
    dcache: CacheStats,
    window_overflows: u64,
    window_underflows: u64,
    max_cycles: u64,
) -> Result<Stats, SimError> {
    let m = &config.memory;
    let icache_fill = (m.read_first + (config.icache.line_words as u32 - 1) * m.read_burst) as u64;
    let dcache_fill = (m.read_first + (config.dcache.line_words as u32 - 1) * m.read_burst) as u64;
    let dread_hit: u64 = if config.dcache_fast_read { 0 } else { 1 };
    let dwrite_hit: u64 = if config.dcache_fast_write { 0 } else { 1 };

    let load_use_stalls = s.load_use * config.iu.load_delay as u64;
    let icc_hold_stalls = if config.iu.icc_hold { s.icc_branch } else { 0 };
    let traps = window_overflows + window_underflows;
    let cycles = s.instructions
        + icache.read_misses * icache_fill
        + if config.iu.fast_decode { 0 } else { s.slow_decode }
        + load_use_stalls
        + icc_hold_stalls
        + s.mul_ops * (config.iu.multiplier.latency() - 1) as u64
        + s.div_ops * (config.iu.divider.latency() - 1) as u64
        + s.taken_branches
        + s.calls * if config.iu.fast_jump { 1 } else { 2 }
        + dcache.read_hits * dread_hit
        + dcache.read_misses * (dread_hit + dcache_fill)
        + dcache.write_hits * dwrite_hit
        + dcache.write_misses * (dwrite_hit + 1)
        + traps * (crate::cpu::WINDOW_TRAP_OVERHEAD + crate::cpu::WINDOW_TRAP_REGS as u64);

    if cycles > max_cycles {
        return Err(SimError::CycleLimitExceeded { limit: max_cycles });
    }

    Ok(Stats {
        cycles,
        instructions: s.instructions,
        icache,
        dcache,
        loads: s.loads,
        stores: s.stores,
        branches: s.branches,
        taken_branches: s.taken_branches,
        calls: s.calls,
        mul_ops: s.mul_ops,
        div_ops: s.div_ops,
        window_overflows,
        window_underflows,
        icc_hold_stalls,
        load_use_stalls,
    })
}

/// Retime a captured trace under `config`, producing the exact [`Stats`] a
/// full simulation of the same program on `config` would produce — in a
/// fraction of the time, because only the caches (and only the *changed*
/// caches) are re-simulated while every other cost is closed-form.
pub fn replay(trace: &Trace, config: &LeonConfig, max_cycles: u64) -> Result<Stats, SimError> {
    config
        .validate()
        .map_err(|e| SimError::InvalidConfig(e.to_string()))?;

    // 1. i-cache behaviour (identical geometry => identical statistics)
    let icache = if config.icache == trace.captured.icache {
        trace.base_icache
    } else {
        walk_fetches(trace, config.icache)
    };

    // 2. d-cache + window-trap behaviour
    let same_mem_behaviour = config.dcache == trace.captured.dcache
        && config.iu.reg_windows == trace.captured.iu.reg_windows;
    let (dcache, window_overflows, window_underflows) = if same_mem_behaviour {
        (trace.base_dcache, trace.base_overflows, trace.base_underflows)
    } else {
        walk_mem(trace, config)
    };

    // 3. closed-form cycle reconstruction
    reconstruct_stats(
        &trace.summary,
        config,
        icache,
        dcache,
        window_overflows,
        window_underflows,
        max_cycles,
    )
}

// ---------------------------------------------------------------------------
// Batched replay: retime every configuration of a sweep in one trace walk
// ---------------------------------------------------------------------------

/// Behaviour class of the memory walk: a distinct (d-cache geometry,
/// register-window count) pair.  Every other Figure 1 knob is a pure
/// closed-form retime, so two configurations in the same class share one
/// memory walk bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct MemClass {
    dcache: CacheConfig,
    reg_windows: u8,
}

/// Entries per resolved-access block of the batched walkers: 4096 × 8 bytes
/// = 32 KB, so a block plus the tags one class touches while streaming
/// through it stay cache-resident.
const WALK_BLOCK: usize = 4096;

/// Accesses one window trap expands into (16 spills or fills).
const TRAP_ACCESSES: usize = crate::cpu::WINDOW_TRAP_REGS as usize;

/// Resident-window automaton shared by every memory class with one window
/// count: trap decisions depend only on the count, so the automaton (and
/// its trap totals) runs once per distinct count and its expansions are
/// applied to each member class's cache.
struct WindowGroup {
    nwindows: u32,
    resident: u32,
    overflows: u64,
    underflows: u64,
    members: Vec<usize>,
}

/// Per-configuration disposition within a [`ReplayBatch`].
#[derive(Clone, Debug)]
enum Disposition {
    /// Failed validation; [`replay`] would fail with exactly this error.
    Invalid(SimError),
    /// Valid: which walk classes (if any) this configuration's cache
    /// statistics come from.  `None` means the captured geometry matches and
    /// the capturing run's statistics are reused verbatim.
    Valid { mem_class: Option<usize>, fetch_class: Option<usize> },
}

/// A planned batch replay: every configuration of a sweep partitioned into
/// *behavior classes*, so that one pass over each trace stream retimes the
/// whole batch.
///
/// The paper's central experiments — the 52-variable cost table and the
/// exhaustive d-cache sweep — evaluate many configurations against one fixed
/// program behaviour.  Per-config [`replay`] walks the trace once per
/// configuration; this plan walks each stream **once**, updating one lean
/// cache model per distinct class simultaneously ([`crate::cache`]'s
/// `TagCache`), and reconstructs every configuration's [`Stats`] closed-form
/// from its class's walk results — bit-identical to element-wise [`replay`]
/// (pinned by `tests/replay_equivalence.rs`).
///
/// The classes of each stream are exposed as an indexable axis
/// ([`ReplayBatch::walk_mem_span`] / [`ReplayBatch::walk_fetch_span`]) so a
/// worker pool can partition *classes* — not configurations — across
/// threads; results are independent of the partitioning, so any thread
/// count produces byte-identical output.  [`replay_batch`] is the serial
/// convenience wrapper: one fused pass per stream.
pub struct ReplayBatch<'a> {
    trace: &'a Trace,
    plan: BatchPlan,
}

/// The trace-independent half of a batch replay — configuration validation,
/// behavior-class dedup and closed-form reconstruction — shared by the
/// in-memory [`ReplayBatch`] and the streaming [`replay_batch_streamed`]
/// path (which never holds a whole [`Trace`]).
struct BatchPlan {
    max_cycles: u64,
    configs: Vec<LeonConfig>,
    dispositions: Vec<Disposition>,
    mem_classes: Vec<MemClass>,
    fetch_classes: Vec<CacheConfig>,
}

impl BatchPlan {
    fn new(captured: &LeonConfig, configs: &[LeonConfig], max_cycles: u64) -> BatchPlan {
        let mut mem_classes = Vec::new();
        let mut fetch_classes = Vec::new();
        let mut mem_index: HashMap<MemClass, usize> = HashMap::new();
        let mut fetch_index: HashMap<CacheConfig, usize> = HashMap::new();
        let dispositions = configs
            .iter()
            .map(|config| {
                if let Err(e) = config.validate() {
                    return Disposition::Invalid(SimError::InvalidConfig(e.to_string()));
                }
                let mem_class = if config.dcache == captured.dcache
                    && config.iu.reg_windows == captured.iu.reg_windows
                {
                    None
                } else {
                    let key =
                        MemClass { dcache: config.dcache, reg_windows: config.iu.reg_windows };
                    Some(*mem_index.entry(key).or_insert_with(|| {
                        mem_classes.push(key);
                        mem_classes.len() - 1
                    }))
                };
                let fetch_class = if config.icache == captured.icache {
                    None
                } else {
                    Some(*fetch_index.entry(config.icache).or_insert_with(|| {
                        fetch_classes.push(config.icache);
                        fetch_classes.len() - 1
                    }))
                };
                Disposition::Valid { mem_class, fetch_class }
            })
            .collect();
        BatchPlan { max_cycles, configs: configs.to_vec(), dispositions, mem_classes, fetch_classes }
    }

    /// Closed-form reconstruction over the walk results, given the captured
    /// base statistics (reused verbatim for classless configurations).
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        summary: &TraceSummary,
        base_icache: CacheStats,
        base_dcache: CacheStats,
        base_overflows: u64,
        base_underflows: u64,
        mem: &[(CacheStats, u64, u64)],
        fetch: &[CacheStats],
    ) -> Vec<Result<Stats, SimError>> {
        assert_eq!(mem.len(), self.mem_classes.len(), "one walk result per memory class");
        assert_eq!(fetch.len(), self.fetch_classes.len(), "one walk result per fetch class");
        self.dispositions
            .iter()
            .zip(&self.configs)
            .map(|(disposition, config)| match disposition {
                Disposition::Invalid(error) => Err(error.clone()),
                Disposition::Valid { mem_class, fetch_class } => {
                    let icache = match fetch_class {
                        Some(class) => fetch[*class],
                        None => base_icache,
                    };
                    let (dcache, overflows, underflows) = match mem_class {
                        Some(class) => mem[*class],
                        None => (base_dcache, base_overflows, base_underflows),
                    };
                    reconstruct_stats(
                        summary,
                        config,
                        icache,
                        dcache,
                        overflows,
                        underflows,
                        self.max_cycles,
                    )
                }
            })
            .collect()
    }
}

impl<'a> ReplayBatch<'a> {
    /// Plan a batch: validate every configuration and partition the batch
    /// into distinct behavior classes (first-appearance order, so the plan
    /// is deterministic for a given configuration sequence).  Performs no
    /// walks.
    pub fn new(trace: &'a Trace, configs: &[LeonConfig], max_cycles: u64) -> ReplayBatch<'a> {
        ReplayBatch { trace, plan: BatchPlan::new(&trace.captured, configs, max_cycles) }
    }

    /// Number of configurations in the batch.
    pub fn len(&self) -> usize {
        self.plan.configs.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.plan.configs.is_empty()
    }

    /// Number of distinct memory-walk behavior classes.
    pub fn mem_class_count(&self) -> usize {
        self.plan.mem_classes.len()
    }

    /// Number of distinct fetch-walk behavior classes.
    pub fn fetch_class_count(&self) -> usize {
        self.plan.fetch_classes.len()
    }

    /// Total distinct behavior classes (the batch's walk budget: no caller
    /// partitioning can make the engine perform more walks than this).
    pub fn class_count(&self) -> usize {
        self.plan.mem_classes.len() + self.plan.fetch_classes.len()
    }

    /// Number of segments of the underlying trace — the second axis of the
    /// class × segment work partition.
    pub fn segment_count(&self) -> usize {
        self.trace.segment_count()
    }

    /// Walk the memory stream **once**, re-simulating every memory class in
    /// `span` simultaneously: each class's lean d-cache model sees exactly
    /// the access sequence the per-config walk would have produced, and one
    /// resident-window automaton per distinct window count re-derives the
    /// traps shared by every class with that count.  Returns each class's
    /// `(dcache stats, overflows, underflows)` in span order.
    ///
    /// Implemented as the segmented walker driven over every segment in
    /// order plus the deterministic partial reduction — the fused serial
    /// walk and any segment-parallel schedule produce byte-identical
    /// results by construction.
    pub fn walk_mem_span(&self, span: Range<usize>) -> Vec<(CacheStats, u64, u64)> {
        if span.is_empty() {
            return Vec::new();
        }
        let mut walker = self.mem_span_walker(span.clone());
        let partials: Vec<MemSegmentPartial> =
            (0..walker.segment_count()).map(|seg| walker.walk_segment(seg)).collect();
        self.reduce_mem_partials(span, &partials)
    }

    /// Build the stateful segmented walker for the memory classes in `span`:
    /// call [`MemSpanWalker::walk_segment`] for every segment in order and
    /// feed the partials to [`ReplayBatch::reduce_mem_partials`].  Counts as
    /// one trace walk (the segment counter ticks per segment).
    ///
    /// # Panics
    ///
    /// Panics when `span` is empty — empty spans have nothing to walk.
    pub fn mem_span_walker(&self, span: Range<usize>) -> MemSpanWalker<'a> {
        let classes = &self.plan.mem_classes[span];
        assert!(!classes.is_empty(), "a span walker needs at least one class");
        record_trace_walk();
        MemSpanWalker { trace: self.trace, core: MemWalkCore::new(classes), next_segment: 0 }
    }

    /// Deterministically merge per-segment memory partials (one per segment,
    /// in segment order, each with one delta per class of `span`) into the
    /// final span results — bit-identical to the monolithic walk: the walk
    /// counters are associative sums over segments, and every derived
    /// statistic is a closed form over those sums.
    pub fn reduce_mem_partials(
        &self,
        span: Range<usize>,
        partials: &[MemSegmentPartial],
    ) -> Vec<(CacheStats, u64, u64)> {
        reduce_mem(&self.trace.summary, span.len(), partials)
    }

    /// Walk the fetch stream **once**, re-simulating every fetch class in
    /// `span` simultaneously.  Returns each class's i-cache statistics in
    /// span order.  Like [`ReplayBatch::walk_mem_span`], this drives the
    /// segmented walker over every segment in order and reduces.
    pub fn walk_fetch_span(&self, span: Range<usize>) -> Vec<CacheStats> {
        if span.is_empty() {
            return Vec::new();
        }
        let mut walker = self.fetch_span_walker(span.clone());
        let partials: Vec<FetchSegmentPartial> =
            (0..walker.segment_count()).map(|seg| walker.walk_segment(seg)).collect();
        self.reduce_fetch_partials(span, &partials)
    }

    /// Build the stateful segmented walker for the fetch classes in `span`
    /// (see [`ReplayBatch::mem_span_walker`]).
    ///
    /// # Panics
    ///
    /// Panics when `span` is empty.
    pub fn fetch_span_walker(&self, span: Range<usize>) -> FetchSpanWalker<'a> {
        let classes = &self.plan.fetch_classes[span];
        assert!(!classes.is_empty(), "a span walker needs at least one class");
        record_trace_walk();
        FetchSpanWalker { trace: self.trace, core: FetchWalkCore::new(classes), next_segment: 0 }
    }

    /// Deterministically merge per-segment fetch partials into the final
    /// span results (see [`ReplayBatch::reduce_mem_partials`]).
    pub fn reduce_fetch_partials(
        &self,
        span: Range<usize>,
        partials: &[FetchSegmentPartial],
    ) -> Vec<CacheStats> {
        reduce_fetch(&self.trace.summary, span.len(), partials)
    }

    /// Reconstruct every configuration's [`Stats`] closed-form from the walk
    /// results (`mem` and `fetch` are the per-class results, concatenated in
    /// class order).  Element `i` equals `replay(trace, &configs[i],
    /// max_cycles)` exactly, including errors.
    pub fn finish(
        &self,
        mem: &[(CacheStats, u64, u64)],
        fetch: &[CacheStats],
    ) -> Vec<Result<Stats, SimError>> {
        self.plan.finish(
            &self.trace.summary,
            self.trace.base_icache,
            self.trace.base_dcache,
            self.trace.base_overflows,
            self.trace.base_underflows,
            mem,
            fetch,
        )
    }
}

// ---------------------------------------------------------------------------
// Segmented span walkers: per-segment partials + deterministic reduction
// ---------------------------------------------------------------------------

/// Counter deltas one memory class accumulated over one segment.  The
/// deltas — not the tag state — are what the segments contribute
/// associatively: summing them in segment order reproduces the monolithic
/// walk's final counters exactly, because the tag state itself chains
/// sequentially through the walker.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemClassDelta {
    /// Read misses charged to the class in this segment.
    pub read_misses: u64,
    /// Write misses charged to the class in this segment.
    pub write_misses: u64,
    /// Window overflow traps of the class's window group in this segment.
    pub overflows: u64,
    /// Window underflow traps of the class's window group in this segment.
    pub underflows: u64,
}

/// Partial result of one memory segment: one delta per class, in span order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemSegmentPartial {
    /// Per-class counter deltas.
    pub classes: Vec<MemClassDelta>,
}

/// Partial result of one fetch segment: per-class read-miss deltas, in span
/// order (fetch walks never write, so one counter suffices).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FetchSegmentPartial {
    /// Per-class read-miss deltas.
    pub classes: Vec<u64>,
}

/// Merge memory partials in segment order into final span results.
fn reduce_mem(
    summary: &TraceSummary,
    count: usize,
    partials: &[MemSegmentPartial],
) -> Vec<(CacheStats, u64, u64)> {
    let mut totals = vec![MemClassDelta::default(); count];
    for partial in partials {
        assert_eq!(partial.classes.len(), count, "one delta per class in every partial");
        for (total, delta) in totals.iter_mut().zip(&partial.classes) {
            total.read_misses += delta.read_misses;
            total.write_misses += delta.write_misses;
            total.overflows += delta.overflows;
            total.underflows += delta.underflows;
        }
    }
    // hit counts are derived, not maintained: every class saw exactly
    // loads + 16·underflows reads and stores + 16·overflows writes
    let trap_regs = crate::cpu::WINDOW_TRAP_REGS as u64;
    totals
        .iter()
        .map(|t| {
            let reads = summary.loads + t.underflows * trap_regs;
            let writes = summary.stores + t.overflows * trap_regs;
            debug_assert!(t.read_misses <= reads && t.write_misses <= writes);
            let stats = CacheStats {
                read_hits: reads - t.read_misses,
                read_misses: t.read_misses,
                write_hits: writes - t.write_misses,
                write_misses: t.write_misses,
            };
            (stats, t.overflows, t.underflows)
        })
        .collect()
}

/// Merge fetch partials in segment order into final span results.
fn reduce_fetch(
    summary: &TraceSummary,
    count: usize,
    partials: &[FetchSegmentPartial],
) -> Vec<CacheStats> {
    let mut totals = vec![0u64; count];
    for partial in partials {
        assert_eq!(partial.classes.len(), count, "one delta per class in every partial");
        for (total, delta) in totals.iter_mut().zip(&partial.classes) {
            *total += delta;
        }
    }
    // every class fetched exactly one read per dynamic instruction
    let fetches = summary.instructions;
    totals
        .iter()
        .map(|&misses| {
            debug_assert!(misses <= fetches);
            CacheStats {
                read_hits: fetches - misses,
                read_misses: misses,
                write_hits: 0,
                write_misses: 0,
            }
        })
        .collect()
}

/// The chained cache/automaton state of a memory span walk, segment-agnostic:
/// the same core serves the in-memory [`MemSpanWalker`] and the streaming
/// [`replay_batch_streamed`] path.
struct MemWalkCore {
    caches: Vec<TagCache>,
    groups: Vec<WindowGroup>,
    /// `group_of[class]` indexes `groups`.
    group_of: Vec<usize>,
    block: Vec<u64>,
}

impl MemWalkCore {
    fn new(classes: &[MemClass]) -> MemWalkCore {
        let caches: Vec<TagCache> =
            classes.iter().map(|class| TagCache::new(class.dcache)).collect();
        // one automaton per distinct window count; members index `caches`
        let mut groups: Vec<WindowGroup> = Vec::new();
        let mut group_of = vec![0usize; classes.len()];
        for (i, class) in classes.iter().enumerate() {
            let nwindows = class.reg_windows as u32;
            match groups.iter_mut().position(|g| g.nwindows == nwindows) {
                Some(index) => {
                    groups[index].members.push(i);
                    group_of[i] = index;
                }
                None => {
                    groups.push(WindowGroup {
                        nwindows,
                        resident: 1,
                        overflows: 0,
                        underflows: 0,
                        members: vec![i],
                    });
                    group_of[i] = groups.len() - 1;
                }
            }
        }
        MemWalkCore {
            caches,
            groups,
            group_of,
            block: Vec::with_capacity(WALK_BLOCK + 2 * TRAP_ACCESSES),
        }
    }

    /// Process one segment's folded items, returning the per-class counter
    /// deltas it contributed.  Must be fed the segments in order — the tag
    /// and automaton state chains across calls.
    fn walk_segment_folded(&mut self, folded: &[u64]) -> MemSegmentPartial {
        let miss_before: Vec<(u64, u64)> =
            self.caches.iter().map(|cache| cache.miss_counts()).collect();
        let trap_before: Vec<(u64, u64)> =
            self.groups.iter().map(|g| (g.overflows, g.underflows)).collect();

        if self.groups.len() == 1 {
            self.walk_folded_blocked(folded);
        } else {
            self.walk_folded_interleaved(folded);
        }

        let classes = self
            .caches
            .iter()
            .enumerate()
            .map(|(i, cache)| {
                let (read_misses, write_misses) = cache.miss_counts();
                let group = &self.groups[self.group_of[i]];
                let (overflows_before, underflows_before) = trap_before[self.group_of[i]];
                MemClassDelta {
                    read_misses: read_misses - miss_before[i].0,
                    write_misses: write_misses - miss_before[i].1,
                    overflows: group.overflows - overflows_before,
                    underflows: group.underflows - underflows_before,
                }
            })
            .collect();
        MemSegmentPartial { classes }
    }

    /// Single-window-count path: the segment's pre-folded items stream into
    /// [`WALK_BLOCK`]-entry buffers that fan out class by class (cache
    /// blocking, as before — the folded-item encoding *is* the block-entry
    /// encoding, so a leader whose line is not already established is pushed
    /// verbatim).  Walk-time folding re-merges items across non-trapping
    /// markers and block starts, recovering the monolithic elision exactly:
    /// every re-merged access is a guaranteed hit whose only state effect
    /// (LRU clock/stamp) is identical either way, and flush/boundary
    /// `run_line` resets are stats-invisible for the same reason.
    fn walk_folded_blocked(&mut self, folded: &[u64]) {
        const RUN_ONE: u64 = 1 << TagCache::MEM_RUN_SHIFT;
        let group = &mut self.groups[0];
        let caches = &mut self.caches;
        let block = &mut self.block;
        // 16-byte line established as present by the last entry's read run
        // (None after a write leader — a write never establishes presence)
        let mut run_line: Option<u32> = None;

        let flush = |block: &mut Vec<u64>, run_line: &mut Option<u32>, caches: &mut [TagCache]| {
            for cache in caches.iter_mut() {
                cache.run_mem_block(block);
            }
            block.clear();
            *run_line = None; // never extend an entry across a flush
        };

        let push = |block: &mut Vec<u64>, run_line: &mut Option<u32>, addr: u32, write: bool| {
            if *run_line == Some(addr >> 4) {
                *block.last_mut().expect("a run leader precedes every extension") += RUN_ONE;
            } else {
                block.push(addr as u64 | if write { TagCache::WRITE_BIT } else { 0 });
                *run_line = (!write).then(|| addr >> 4);
            }
        };

        for &item in folded {
            if item & FOLD_MARKER_BIT != 0 {
                let sp = item as u32;
                if item & FOLD_RESTORE_BIT != 0 {
                    if group.resident <= 1 {
                        group.underflows += 1;
                        for i in 0..crate::cpu::WINDOW_TRAP_REGS {
                            push(block, &mut run_line, sp.wrapping_sub(4 + i * 4), false);
                        }
                    } else {
                        group.resident -= 1;
                    }
                } else if group.resident >= group.nwindows - 1 {
                    group.overflows += 1;
                    for i in 0..crate::cpu::WINDOW_TRAP_REGS {
                        push(block, &mut run_line, sp.wrapping_sub(4 + i * 4), true);
                    }
                } else {
                    group.resident += 1;
                }
            } else {
                let addr = item as u32;
                let write = item & TagCache::WRITE_BIT != 0;
                if run_line == Some(addr >> 4) {
                    // the stored leader and its whole run are guaranteed hits
                    // here: merge all of them into the established entry
                    let run = item >> TagCache::MEM_RUN_SHIFT;
                    *block.last_mut().expect("a run leader precedes every extension") +=
                        (1 + run) * RUN_ONE;
                } else {
                    block.push(item);
                    run_line = (!write).then(|| addr >> 4);
                }
            }
            if block.len() >= WALK_BLOCK {
                flush(block, &mut run_line, caches);
            }
        }
        flush(block, &mut run_line, caches);
    }

    /// Mixed-window-count path: fan every folded item out to all classes as
    /// it is decoded (each group's trap expansions interleave at its own
    /// positions, so a shared resolved buffer does not exist).  A read
    /// leader's elided followers surface as `read_run` extras — guaranteed
    /// hits whose LRU clock/stamp effects match the per-access walk.
    fn walk_folded_interleaved(&mut self, folded: &[u64]) {
        for &item in folded {
            if item & FOLD_MARKER_BIT != 0 {
                let sp = item as u32;
                let restore = item & FOLD_RESTORE_BIT != 0;
                for group in self.groups.iter_mut() {
                    if restore {
                        if group.resident <= 1 {
                            group.underflows += 1;
                            for &member in &group.members {
                                let cache = &mut self.caches[member];
                                for i in 0..crate::cpu::WINDOW_TRAP_REGS {
                                    cache.read(sp.wrapping_sub(4 + i * 4));
                                }
                            }
                        } else {
                            group.resident -= 1;
                        }
                    } else if group.resident >= group.nwindows - 1 {
                        group.overflows += 1;
                        for &member in &group.members {
                            let cache = &mut self.caches[member];
                            for i in 0..crate::cpu::WINDOW_TRAP_REGS {
                                cache.write(sp.wrapping_sub(4 + i * 4));
                            }
                        }
                    } else {
                        group.resident += 1;
                    }
                }
            } else {
                let addr = item as u32;
                if item & TagCache::WRITE_BIT != 0 {
                    debug_assert_eq!(item >> TagCache::MEM_RUN_SHIFT, 0, "write leaders carry no run");
                    for cache in self.caches.iter_mut() {
                        cache.write(addr);
                    }
                } else {
                    let run = item >> TagCache::MEM_RUN_SHIFT;
                    for cache in self.caches.iter_mut() {
                        cache.read_run(addr, run);
                    }
                }
            }
        }
    }
}

/// The chained cache state of a fetch span walk (see [`MemWalkCore`]).
struct FetchWalkCore {
    caches: Vec<TagCache>,
    block: Vec<u64>,
}

impl FetchWalkCore {
    fn new(classes: &[CacheConfig]) -> FetchWalkCore {
        FetchWalkCore {
            caches: classes.iter().map(|&config| TagCache::new(config)).collect(),
            block: Vec::with_capacity(WALK_BLOCK),
        }
    }

    /// Process one segment's records, returning per-class read-miss deltas.
    /// Must be fed the segments in order.
    fn walk_segment_ops(&mut self, ops: &[TraceOp]) -> FetchSegmentPartial {
        let before: Vec<u64> = self.caches.iter().map(|cache| cache.miss_counts().0).collect();

        // Consecutive records inside one 16-byte block — the captured
        // fetch-run invariant guarantees a compressed run never crosses one
        // — merge into the previous entry's run: after the leading fetch
        // the line is present in every class, so the followers are
        // guaranteed hits (probed by nobody, clock-accounted under LRU).
        const RUN_ONE: u64 = 1 << TagCache::MEM_RUN_SHIFT;
        let caches = &mut self.caches;
        let block = &mut self.block;
        let mut run_line: Option<u32> = None;
        let flush = |block: &mut Vec<u64>, run_line: &mut Option<u32>, caches: &mut [TagCache]| {
            for cache in caches.iter_mut() {
                cache.run_mem_block(block);
            }
            block.clear();
            *run_line = None;
        };
        for op in ops {
            let fetches = if op.flags == 0 { op.aux as u64 } else { 1 };
            if run_line == Some(op.pc >> 4) {
                *block.last_mut().expect("a run leader precedes every extension") +=
                    fetches * RUN_ONE;
            } else {
                block.push(op.pc as u64 | (fetches - 1) * RUN_ONE);
                run_line = Some(op.pc >> 4);
                if block.len() >= WALK_BLOCK {
                    flush(block, &mut run_line, caches);
                }
            }
        }
        flush(block, &mut run_line, caches);

        let classes = self
            .caches
            .iter()
            .zip(&before)
            .map(|(cache, &misses_before)| cache.miss_counts().0 - misses_before)
            .collect();
        FetchSegmentPartial { classes }
    }
}

/// Stateful segmented walker over the memory classes of one span: walk the
/// segments strictly in order, collect the per-segment partials, reduce.
/// The walker owns the chained tag-cache and window-automaton state, so it
/// can be parked (e.g. in a scheduler slot between class × segment work
/// units) and resumed on the next segment by any thread.
pub struct MemSpanWalker<'a> {
    trace: &'a Trace,
    core: MemWalkCore,
    next_segment: usize,
}

impl MemSpanWalker<'_> {
    /// Segments of the underlying trace (the number of `walk_segment` calls
    /// a full span walk makes).
    pub fn segment_count(&self) -> usize {
        self.trace.segment_count()
    }

    /// Walk segment `seg` (must be `0, 1, 2, …` in order) and return its
    /// per-class counter deltas.
    ///
    /// # Panics
    ///
    /// Panics when segments are walked out of order.
    pub fn walk_segment(&mut self, seg: usize) -> MemSegmentPartial {
        assert_eq!(seg, self.next_segment, "segments must be walked in order");
        self.next_segment += 1;
        record_segment_walk();
        let range = self.trace.folded_range(seg);
        self.core.walk_segment_folded(&self.trace.folded[range])
    }
}

/// Stateful segmented walker over the fetch classes of one span (see
/// [`MemSpanWalker`]).
pub struct FetchSpanWalker<'a> {
    trace: &'a Trace,
    core: FetchWalkCore,
    next_segment: usize,
}

impl FetchSpanWalker<'_> {
    /// Segments of the underlying trace.
    pub fn segment_count(&self) -> usize {
        self.trace.segment_count()
    }

    /// Walk segment `seg` (must be `0, 1, 2, …` in order) and return its
    /// per-class read-miss deltas.
    ///
    /// # Panics
    ///
    /// Panics when segments are walked out of order.
    pub fn walk_segment(&mut self, seg: usize) -> FetchSegmentPartial {
        assert_eq!(seg, self.next_segment, "segments must be walked in order");
        self.next_segment += 1;
        record_segment_walk();
        let range = self.trace.ops_range(seg);
        self.core.walk_segment_ops(&self.trace.ops[range])
    }
}

/// Retime every configuration of a batch against one captured trace in a
/// single pass per trace stream.
///
/// Element `i` of the result equals `replay(trace, &configs[i], max_cycles)`
/// bit-for-bit (including `InvalidConfig` and `CycleLimitExceeded` errors),
/// but a batch of N configurations performs at most **two** trace walks —
/// one over the memory stream for all distinct (d-cache geometry, window
/// count) classes, one over the record stream for all distinct i-cache
/// geometries — instead of up to N.  Callers with a worker pool should
/// partition the classes instead (see [`ReplayBatch`]).
pub fn replay_batch(
    trace: &Trace,
    configs: &[LeonConfig],
    max_cycles: u64,
) -> Vec<Result<Stats, SimError>> {
    let plan = ReplayBatch::new(trace, configs, max_cycles);
    let mem = plan.walk_mem_span(0..plan.mem_class_count());
    let fetch = plan.walk_fetch_span(0..plan.fetch_class_count());
    plan.finish(&mem, &fetch)
}

/// Run `program` on `config` once, capturing both the full [`crate::RunResult`]
/// and the execution trace for later replays.
pub fn capture(
    config: &LeonConfig,
    program: &leon_isa::Program,
    max_cycles: u64,
) -> Result<(crate::RunResult, Trace), SimError> {
    let mut cpu = crate::Cpu::new(*config, program)?;
    cpu.enable_trace();
    let result = cpu.run(max_cycles)?;
    let ops = cpu.take_trace().expect("trace was enabled before the run");
    let trace = Trace::assemble(ops, config, &result.stats);
    Ok((result, trace))
}

// ---------------------------------------------------------------------------
// Streaming decode: one segment resident at a time
// ---------------------------------------------------------------------------

/// Random-access byte source a [`StreamedTrace`] reads segments from — a
/// file, an in-memory buffer, or an artifact-store payload window.
pub trait SegmentRead: Send + Sync {
    /// Fill `buf` from the source starting at `offset`; errors (rather than
    /// short-reads) when the range is out of bounds.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> std::io::Result<()>;

    /// Total byte length of the source.
    fn total_len(&self) -> std::io::Result<u64>;
}

impl SegmentRead for Vec<u8> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
        let start = usize::try_from(offset)
            .ok()
            .filter(|&s| s.checked_add(buf.len()).is_some_and(|end| end <= self.len()));
        match start {
            Some(start) => {
                buf.copy_from_slice(&self[start..start + buf.len()]);
                Ok(())
            }
            None => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "read past the end of the trace buffer",
            )),
        }
    }

    fn total_len(&self) -> std::io::Result<u64> {
        Ok(self.len() as u64)
    }
}

/// One materialised trace segment: the records and the capture-folded
/// memory items, exactly the slices the in-memory walkers see.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSegment {
    /// The segment's trace records.
    pub ops: Vec<TraceOp>,
    /// The segment's capture-folded memory items.
    pub folded: Vec<u64>,
}

/// A version-2 serialised trace opened for streaming: the header and the
/// segment index are resident, the payload is fetched one segment at a time
/// through a [`SegmentRead`], so peak memory is O(largest segment) instead
/// of O(trace).
///
/// Opening validates the header fields, the segment index structure and the
/// total length; each [`StreamedTrace::load_segment`] then verifies its
/// segment's checksum and re-derives the folded stream from the records
/// (segments are self-contained: capture-side folds split at segment
/// boundaries).  The whole-file checksum is deliberately *not* verified —
/// doing so would read O(trace) bytes, which is exactly what streaming
/// avoids; corruption in any payload byte is still caught by the per-segment
/// checksums.
pub struct StreamedTrace {
    source: Box<dyn SegmentRead>,
    header: TraceHeader,
    /// Absolute byte offset of the payload region (just past the index).
    payload_base: u64,
}

impl std::fmt::Debug for StreamedTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamedTrace")
            .field("header", &self.header)
            .field("payload_base", &self.payload_base)
            .finish_non_exhaustive()
    }
}

/// Serialised byte length of the fixed v2 prefix (everything before the
/// segment index): magic, version, config, base stats, trap counts, record
/// count, summary, folded count, segment count.
const V2_PREFIX_LEN: usize = 252;

impl StreamedTrace {
    /// Open a serialised version-2 trace for streaming access.
    ///
    /// Reads O(header + index) bytes.  Version-1 traces are rejected —
    /// their monolithic layout has no segment index to stream from; decode
    /// them with [`Trace::from_bytes`] (re-serialising writes version 2).
    pub fn open(source: Box<dyn SegmentRead>) -> Result<StreamedTrace, TraceCodecError> {
        let total = source
            .total_len()
            .map_err(|e| TraceCodecError::new(format!("could not size the trace source: {e}")))?;
        let read = |offset: u64, len: usize| -> Result<Vec<u8>, TraceCodecError> {
            let mut buf = vec![0u8; len];
            source
                .read_at(offset, &mut buf)
                .map_err(|e| TraceCodecError::new(format!("could not read the trace source: {e}")))?;
            Ok(buf)
        };

        if total < (TRACE_MAGIC.len() + 4 + 8) as u64 {
            return Err(TraceCodecError::new("input shorter than the fixed header"));
        }
        let probe = read(0, 8)?;
        if probe[..4] != TRACE_MAGIC {
            return Err(TraceCodecError::new("bad magic (not a serialised trace)"));
        }
        let version = u32::from_le_bytes(probe[4..8].try_into().unwrap());
        if version == TRACE_FORMAT_V1 {
            return Err(TraceCodecError::new(
                "version 1 traces have no segment index and cannot be streamed; decode with \
                 Trace::from_bytes (re-serialising writes version 2)",
            ));
        }
        if version != TRACE_FORMAT_VERSION {
            return Err(TraceCodecError::new(format!(
                "unsupported trace format version {version} (expected {TRACE_FORMAT_VERSION})"
            )));
        }
        if total < (V2_PREFIX_LEN + 8) as u64 {
            return Err(TraceCodecError::new("input shorter than the version-2 prefix"));
        }
        let mut head = read(0, V2_PREFIX_LEN)?;
        let count =
            u32::from_le_bytes(head[V2_PREFIX_LEN - 4..].try_into().unwrap()) as u64;
        let index_len = count
            .checked_mul(SEGMENT_INFO_LEN as u64)
            .filter(|&n| V2_PREFIX_LEN as u64 + n + 8 <= total)
            .ok_or_else(|| {
                TraceCodecError::new("segment index does not fit the serialised trace")
            })?;
        head.extend_from_slice(&read(V2_PREFIX_LEN as u64, index_len as usize)?);

        let mut r = ByteReader { bytes: &head, pos: 0 };
        let header = parse_header(&mut r)?;
        debug_assert_eq!(r.pos, head.len());
        let payload = validate_segment_index(&header)?;
        let payload_base = head.len() as u64;
        if payload_base + payload + 8 != total {
            return Err(TraceCodecError::new(format!(
                "record count {} does not match the remaining payload",
                header.records
            )));
        }
        Ok(StreamedTrace { source, header, payload_base })
    }

    /// The resident header (capturing config, base stats, summary, index).
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Number of segments in the trace.
    pub fn segment_count(&self) -> usize {
        self.header.segments.len()
    }

    /// Fetch, verify and decode segment `i`.
    ///
    /// Verification is self-contained: the payload bytes must match the
    /// index's per-segment checksum, and the stored folded items must equal
    /// re-derivation from the segment's own records (folds never cross a
    /// segment boundary, so no predecessor context is needed).
    pub fn load_segment(&self, i: usize) -> Result<TraceSegment, TraceCodecError> {
        assert!(i < self.header.segments.len(), "segment index out of range");
        let info = &self.header.segments[i];
        let (recs, folded_count, len) = segment_payload_len(&self.header, i);
        let mut bytes = vec![0u8; len as usize];
        self.source
            .read_at(self.payload_base + info.payload_offset, &mut bytes)
            .map_err(|e| TraceCodecError::new(format!("could not read segment {i}: {e}")))?;
        let computed = fnv1a64(&bytes);
        if computed != info.checksum {
            return Err(TraceCodecError::new(format!(
                "segment {i} checksum mismatch: stored {:#018x}, computed {computed:#018x}",
                info.checksum
            )));
        }
        let mut r = ByteReader { bytes: &bytes, pos: 0 };
        let mut ops = Vec::with_capacity(recs as usize);
        for _ in 0..recs {
            ops.push(TraceOp { pc: r.u32()?, flags: r.u16()?, aux: r.u32()? });
        }
        let mut folded = Vec::with_capacity(folded_count as usize);
        for _ in 0..folded_count {
            folded.push(r.u64()?);
        }
        let (_, derived) =
            derive_segments(&ops, &[0], self.header.captured.iu.reg_windows as u32);
        if derived != folded {
            return Err(TraceCodecError::new(format!(
                "segment {i}: stored folded items do not match the record stream"
            )));
        }
        Ok(TraceSegment { ops, folded })
    }
}

/// Retime every configuration of a batch against a [`StreamedTrace`],
/// holding **one segment** in memory at a time: peak memory is
/// O(largest segment + classes), never O(trace).
///
/// Element `i` of the result equals `replay(trace, &configs[i], max_cycles)`
/// bit-for-bit for the fully-decoded equivalent trace — the walkers are the
/// same chained [`MemWalkCore`]/[`FetchWalkCore`] the in-memory spans use,
/// fed the identical per-segment record and folded-item slices.  The walk is
/// serial (all classes advance together through each segment); callers
/// wanting parallelism should decode fully and partition class × segment
/// units instead.
pub fn replay_batch_streamed(
    streamed: &StreamedTrace,
    configs: &[LeonConfig],
    max_cycles: u64,
) -> Result<Vec<Result<Stats, SimError>>, TraceCodecError> {
    let header = streamed.header();
    let summary =
        header.summary.as_ref().expect("a streamed trace is v2 and stores its summary");
    let plan = BatchPlan::new(&header.captured, configs, max_cycles);

    let mut mem_core = (!plan.mem_classes.is_empty()).then(|| {
        record_trace_walk();
        MemWalkCore::new(&plan.mem_classes)
    });
    let mut fetch_core = (!plan.fetch_classes.is_empty()).then(|| {
        record_trace_walk();
        FetchWalkCore::new(&plan.fetch_classes)
    });

    let mut mem_partials: Vec<MemSegmentPartial> = Vec::new();
    let mut fetch_partials: Vec<FetchSegmentPartial> = Vec::new();
    if mem_core.is_some() || fetch_core.is_some() {
        for seg in 0..streamed.segment_count() {
            let segment = streamed.load_segment(seg)?;
            if let Some(core) = mem_core.as_mut() {
                record_segment_walk();
                mem_partials.push(core.walk_segment_folded(&segment.folded));
            }
            if let Some(core) = fetch_core.as_mut() {
                record_segment_walk();
                fetch_partials.push(core.walk_segment_ops(&segment.ops));
            }
        }
    }

    let mem = reduce_mem(summary, plan.mem_classes.len(), &mem_partials);
    let fetch = reduce_fetch(summary, plan.fetch_classes.len(), &fetch_partials);
    Ok(plan.finish(
        summary,
        header.base_icache,
        header.base_dcache,
        header.base_overflows,
        header.base_underflows,
        &mem,
        &fetch,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Multiplier, ReplacementPolicy};
    use leon_isa::{Asm, Reg};

    fn demo_program() -> leon_isa::Program {
        let mut a = Asm::new("trace-demo");
        a.set(Reg::L0, 64);
        a.set(Reg::L1, 0);
        a.set(Reg::L2, leon_isa::DEFAULT_MEMORY_SIZE / 2);
        a.label("loop");
        a.st(Reg::L1, Reg::L2, 0);
        a.ld(Reg::L3, Reg::L2, 0);
        a.add(Reg::L1, Reg::L3, 1);
        a.smul(Reg::L4, Reg::L1, 3);
        a.add(Reg::L2, Reg::L2, 4);
        a.subcc(Reg::L0, Reg::L0, 1);
        a.bne("loop");
        a.halt();
        a.assemble().unwrap()
    }

    /// A recursive program that overflows and underflows the window file.
    fn recursing_program() -> leon_isa::Program {
        let mut a = Asm::new("recurse");
        a.set(Reg::O0, 12);
        a.call("func");
        a.halt();
        a.label("func");
        a.save(Reg::SP, Reg::SP, -96);
        a.cmp(Reg::I0, 0);
        a.be("leaf");
        a.add(Reg::O0, Reg::I0, -1_i32);
        a.call("func");
        a.label("leaf");
        a.ret_restore();
        a.assemble().unwrap()
    }

    #[test]
    fn capture_matches_plain_simulation() {
        let config = LeonConfig::base();
        for program in [demo_program(), recursing_program()] {
            let plain = crate::simulate(&config, &program, 1_000_000).unwrap();
            let (run, trace) = capture(&config, &program, 1_000_000).unwrap();
            assert_eq!(run.stats, plain.stats, "tracing must not perturb the run");
            assert_eq!(trace.instructions(), plain.stats.instructions);
            assert!(
                trace.len() as u64 <= plain.stats.instructions,
                "fetch runs must compress, not expand"
            );
        }
    }

    #[test]
    fn replay_reproduces_capture_config_exactly() {
        let config = LeonConfig::base();
        for program in [demo_program(), recursing_program()] {
            let (run, trace) = capture(&config, &program, 1_000_000).unwrap();
            let stats = replay(&trace, &config, 1_000_000).unwrap();
            assert_eq!(stats, run.stats);
        }
    }

    #[test]
    fn replay_retimes_cache_and_latency_perturbations_exactly() {
        let base = LeonConfig::base();
        let program = demo_program();
        let (_, trace) = capture(&base, &program, 1_000_000).unwrap();

        let mut perturbations = Vec::new();
        let mut c = base;
        c.dcache.way_kb = 1;
        perturbations.push(c);
        let mut c = base;
        c.dcache.ways = 2;
        c.dcache.replacement = ReplacementPolicy::Lru;
        perturbations.push(c);
        let mut c = base;
        c.icache.line_words = 4;
        perturbations.push(c);
        let mut c = base;
        c.icache.way_kb = 1;
        c.icache.ways = 2;
        c.icache.replacement = ReplacementPolicy::Lrr;
        perturbations.push(c);
        let mut c = base;
        c.iu.multiplier = Multiplier::M32x32;
        perturbations.push(c);
        let mut c = base;
        c.dcache_fast_read = true;
        c.dcache_fast_write = true;
        perturbations.push(c);
        let mut c = base;
        c.iu.load_delay = 2;
        c.iu.fast_decode = false;
        c.iu.fast_jump = false;
        c.iu.icc_hold = false;
        perturbations.push(c);

        for config in perturbations {
            let full = crate::simulate(&config, &program, 1_000_000).unwrap();
            let replayed = replay(&trace, &config, 1_000_000).unwrap();
            assert_eq!(replayed, full.stats, "replay must be bit-identical for {config:?}");
        }
    }

    #[test]
    fn replay_retimes_register_window_changes_exactly() {
        // the recursion depth (12) straddles every window count here, so the
        // trap pattern genuinely differs between configurations
        let base = LeonConfig::base();
        let program = recursing_program();
        let (_, trace) = capture(&base, &program, 1_000_000).unwrap();
        for windows in [2u8, 4, 8, 16, 32] {
            let mut config = base;
            config.iu.reg_windows = windows;
            let full = crate::simulate(&config, &program, 1_000_000).unwrap();
            let replayed = replay(&trace, &config, 1_000_000).unwrap();
            assert_eq!(
                replayed, full.stats,
                "replay must re-derive window traps for {windows} windows"
            );
            if windows == 2 {
                assert!(replayed.window_overflows > 0, "2 windows must trap on recursion");
            }
        }
    }

    #[test]
    fn replay_respects_the_cycle_budget() {
        let base = LeonConfig::base();
        let program = demo_program();
        let (run, trace) = capture(&base, &program, 1_000_000).unwrap();
        let limit = run.stats.cycles / 2;
        let full = crate::simulate(&base, &program, limit).unwrap_err();
        let replayed = replay(&trace, &base, limit).unwrap_err();
        assert_eq!(full, replayed);
        assert!(matches!(replayed, SimError::CycleLimitExceeded { .. }));
    }

    #[test]
    fn budget_boundary_is_identical_to_simulation() {
        // Regression test for the one semantic divergence the first trace
        // engine shipped with: a budget first exceeded by the *final*
        // instruction used to finish under full simulation but error under
        // replay.  Both must now treat the budget as a bound on the total.
        let base = LeonConfig::base();
        for program in [demo_program(), recursing_program()] {
            let (run, trace) = capture(&base, &program, 1_000_000).unwrap();
            let total = run.stats.cycles;

            // budget == total: both engines finish, bit-identically
            let full = crate::simulate(&base, &program, total).unwrap();
            let replayed = replay(&trace, &base, total).unwrap();
            assert_eq!(replayed, full.stats);

            // budget == total - 1 (exhausted on the final instruction):
            // both engines must fail with the same error
            let full = crate::simulate(&base, &program, total - 1).unwrap_err();
            let replayed = replay(&trace, &base, total - 1).unwrap_err();
            assert_eq!(full, SimError::CycleLimitExceeded { limit: total - 1 });
            assert_eq!(replayed, full);
        }
    }

    #[test]
    fn replay_batch_matches_elementwise_replay_on_a_mixed_batch() {
        let base = LeonConfig::base();
        for program in [demo_program(), recursing_program()] {
            let (_, trace) = capture(&base, &program, 1_000_000).unwrap();

            let mut configs = Vec::new();
            configs.push(base); // the captured configuration itself
            let mut c = base;
            c.dcache.way_kb = 1;
            configs.push(c);
            configs.push(c); // duplicate: same behavior class, same result
            let mut c = base;
            c.dcache.ways = 2;
            c.dcache.replacement = ReplacementPolicy::Lru;
            c.iu.reg_windows = 2;
            configs.push(c);
            let mut c = base;
            c.icache.way_kb = 1;
            c.icache.ways = 2;
            c.icache.replacement = ReplacementPolicy::Lrr;
            configs.push(c);
            let mut c = base;
            c.iu.multiplier = Multiplier::M32x32;
            c.dcache_fast_read = true;
            configs.push(c); // pure closed-form retime, no class at all
            let mut c = base;
            c.dcache.way_kb = 3; // structurally invalid
            configs.push(c);

            let batched = replay_batch(&trace, &configs, 1_000_000);
            let elementwise: Vec<_> =
                configs.iter().map(|c| replay(&trace, c, 1_000_000)).collect();
            assert_eq!(batched, elementwise, "batch must equal element-wise replay exactly");
            assert!(matches!(batched[6], Err(SimError::InvalidConfig(_))));
        }
    }

    #[test]
    fn replay_batch_enforces_the_cycle_budget_per_configuration() {
        let base = LeonConfig::base();
        let program = demo_program();
        let (run, trace) = capture(&base, &program, 1_000_000).unwrap();
        let mut slow = base;
        slow.iu.fast_decode = false;
        slow.iu.fast_jump = false;
        // budget exactly the base total: the base fits, the slowed config
        // must exceed it — with the same error replay produces
        let results = replay_batch(&trace, &[base, slow], run.stats.cycles);
        assert_eq!(results[0].as_ref().unwrap().cycles, run.stats.cycles);
        assert_eq!(
            results[1],
            Err(SimError::CycleLimitExceeded { limit: run.stats.cycles })
        );
        assert_eq!(results[1], replay(&trace, &slow, run.stats.cycles));
    }

    #[test]
    fn batch_plan_deduplicates_behavior_classes_and_walks_once_per_span() {
        let base = LeonConfig::base();
        let program = recursing_program();
        let (_, trace) = capture(&base, &program, 1_000_000).unwrap();

        let mut dcache_small = base;
        dcache_small.dcache.way_kb = 1;
        let mut windows_low = base;
        windows_low.iu.reg_windows = 2;
        let mut icache_small = base;
        icache_small.icache.way_kb = 1;
        let mut closed_form = base;
        closed_form.iu.multiplier = Multiplier::M32x32;
        let configs =
            [base, dcache_small, dcache_small, windows_low, icache_small, closed_form, base];

        let plan = ReplayBatch::new(&trace, &configs, 1_000_000);
        assert_eq!(plan.len(), 7);
        // duplicates and base-geometry configs never create classes
        assert_eq!(plan.mem_class_count(), 2, "dcache_small (deduped) + windows_low");
        assert_eq!(plan.fetch_class_count(), 1, "icache_small");
        assert_eq!(plan.class_count(), 3);

        // a span walk is exactly one counted pass over the stream
        let before = trace_walks_performed();
        let mem = plan.walk_mem_span(0..plan.mem_class_count());
        assert_eq!(trace_walks_performed() - before, 1);
        let fetch = plan.walk_fetch_span(0..plan.fetch_class_count());
        assert_eq!(trace_walks_performed() - before, 2);
        // empty spans are free
        assert!(plan.walk_mem_span(0..0).is_empty());
        assert_eq!(trace_walks_performed() - before, 2);

        // split spans produce the same per-class results as the fused pass
        let first = plan.walk_mem_span(0..1);
        let second = plan.walk_mem_span(1..2);
        assert_eq!(mem, [first, second].concat());

        let finished = plan.finish(&mem, &fetch);
        for (result, config) in finished.iter().zip(&configs) {
            assert_eq!(result.as_ref().unwrap(), &replay(&trace, config, 1_000_000).unwrap());
        }
    }

    #[test]
    fn traces_are_shared_across_measurement_workers() {
        // the campaign engine fans replays of one trace out over a worker
        // pool; the trace type must stay plain shareable data
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Trace>();
        assert_send_sync::<TraceOp>();
        assert_send_sync::<MemOp>();
    }

    #[test]
    fn compressed_runs_never_cross_a_16_byte_block() {
        let base = LeonConfig::base();
        let program = demo_program();
        let (_, trace) = capture(&base, &program, 1_000_000).unwrap();
        for op in &trace.ops {
            if op.flags == 0 {
                assert!(op.aux >= 1 && op.aux <= 4);
                let last_pc = op.pc + 4 * (op.aux - 1);
                assert_eq!(op.pc >> 4, last_pc >> 4, "run crosses a minimum-size line");
            }
        }
    }

    #[test]
    fn binary_codec_round_trips_exactly() {
        let mut config = LeonConfig::base();
        // a non-default capture configuration exercises every encoded field
        config.icache.ways = 2;
        config.icache.replacement = ReplacementPolicy::Lru;
        config.iu.multiplier = Multiplier::M32x32;
        config.dcache_fast_read = true;
        for program in [demo_program(), recursing_program()] {
            let (_, trace) = capture(&config, &program, 1_000_000).unwrap();
            let bytes = trace.to_bytes();
            let decoded = Trace::from_bytes(&bytes).unwrap();
            assert_eq!(decoded, trace, "decode(encode(t)) must equal t exactly");
            // and the decoded trace replays bit-identically to the original
            let base = LeonConfig::base();
            assert_eq!(
                replay(&decoded, &base, 1_000_000).unwrap(),
                replay(&trace, &base, 1_000_000).unwrap()
            );
        }
    }

    #[test]
    fn peek_header_reads_only_the_fixed_header() {
        let mut config = LeonConfig::base();
        config.icache.ways = 2;
        config.icache.replacement = ReplacementPolicy::Lru;
        let (run, trace) = capture(&config, &recursing_program(), 1_000_000).unwrap();
        let bytes = trace.to_bytes();

        let header = Trace::peek_header(&bytes).unwrap();
        assert_eq!(header.version, TRACE_FORMAT_VERSION);
        assert_eq!(header.captured, config);
        assert_eq!(header.base_icache, run.stats.icache);
        assert_eq!(header.base_dcache, run.stats.dcache);
        assert_eq!(header.base_overflows, run.stats.window_overflows);
        assert_eq!(header.records, trace.ops.len() as u64);

        // a record-stream bit flip passes the peek (no integrity claim) but
        // still fails the full decode
        let mut flipped = bytes.clone();
        let pos = flipped.len() - 20;
        flipped[pos] ^= 0x40;
        assert!(Trace::peek_header(&flipped).is_ok());
        assert!(Trace::from_bytes(&flipped).is_err());

        // header damage is caught by the peek itself
        assert!(Trace::peek_header(&bytes[..10]).is_err());
        let mut versioned = bytes.clone();
        versioned[4..8].copy_from_slice(&(TRACE_FORMAT_VERSION + 7).to_le_bytes());
        let err = Trace::peek_header(&versioned).unwrap_err();
        assert!(err.to_string().contains("version"), "got: {err}");
        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 10);
        assert!(Trace::peek_header(&truncated).is_err(), "record count must mismatch");
    }

    #[test]
    fn binary_codec_rejects_damage() {
        let (_, trace) = capture(&LeonConfig::base(), &demo_program(), 1_000_000).unwrap();
        let good = trace.to_bytes();
        assert!(Trace::from_bytes(&good).is_ok());

        // truncation (both mid-record and mid-header)
        assert!(Trace::from_bytes(&good[..good.len() - 1]).is_err());
        assert!(Trace::from_bytes(&good[..10]).is_err());
        assert!(Trace::from_bytes(&[]).is_err());

        // a single flipped bit anywhere must fail the checksum
        for pos in [0usize, 4, good.len() / 2, good.len() - 9] {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            assert!(Trace::from_bytes(&bad).is_err(), "bit flip at {pos} must be detected");
        }

        // a different format version must be rejected even with a valid
        // checksum over the altered body
        let mut versioned = good.clone();
        versioned[4..8].copy_from_slice(&(TRACE_FORMAT_VERSION + 1).to_le_bytes());
        let body_len = versioned.len() - 8;
        let checksum = fnv1a64(&versioned[..body_len]);
        versioned[body_len..].copy_from_slice(&checksum.to_le_bytes());
        let err = Trace::from_bytes(&versioned).unwrap_err();
        assert!(err.to_string().contains("version"), "got: {err}");

        // trailing garbage is rejected (record count no longer matches)
        let mut padded = good[..good.len() - 8].to_vec();
        padded.extend_from_slice(&[0u8; 10]);
        let checksum = fnv1a64(&padded);
        padded.extend_from_slice(&checksum.to_le_bytes());
        assert!(Trace::from_bytes(&padded).is_err());
    }

    #[test]
    fn summary_and_mem_stream_are_consistent() {
        let base = LeonConfig::base();
        let program = recursing_program();
        let (run, trace) = capture(&base, &program, 1_000_000).unwrap();
        let s = &trace.summary;
        assert_eq!(s.instructions, run.stats.instructions);
        assert_eq!(s.loads, run.stats.loads);
        assert_eq!(s.stores, run.stats.stores);
        assert_eq!(s.branches, run.stats.branches);
        assert_eq!(s.taken_branches, run.stats.taken_branches);
        assert_eq!(s.calls, run.stats.calls);
        let mem_loads = trace.mem.iter().filter(|m| matches!(m, MemOp::Load(_))).count() as u64;
        let saves = trace.mem.iter().filter(|m| matches!(m, MemOp::Save(_))).count() as u64;
        assert_eq!(mem_loads, s.loads);
        assert_eq!(saves, s.saves);
        assert!(s.saves > 0 && s.restores > 0, "recursion must rotate windows");
    }

    /// A small mixed batch: base geometry, a d-cache + window variant, an
    /// i-cache variant, and a pure closed-form variant.
    fn mixed_batch(base: &LeonConfig) -> Vec<LeonConfig> {
        let mut dcache_small = *base;
        dcache_small.dcache.way_kb = 1;
        dcache_small.iu.reg_windows = 2;
        let mut icache_small = *base;
        icache_small.icache.way_kb = 1;
        let mut closed_form = *base;
        closed_form.iu.multiplier = Multiplier::M32x32;
        vec![*base, dcache_small, icache_small, closed_form]
    }

    #[test]
    fn resegmented_traces_replay_and_round_trip_identically() {
        let base = LeonConfig::base();
        let configs = mixed_batch(&base);
        for program in [demo_program(), recursing_program()] {
            let (_, trace) = capture(&base, &program, 1_000_000).unwrap();
            let expected = replay_batch(&trace, &configs, 1_000_000);

            // deliberately odd boundaries: 1-record segments up front, cuts
            // mid-stream — results and the codec round-trip must not care
            let n = trace.ops.len();
            let mut boundaries: Vec<usize> = vec![0, 1, 2, n / 3, n / 2, n - 1];
            boundaries.sort_unstable();
            boundaries.dedup();
            boundaries.retain(|&b| b < n);
            let mut resegmented = trace.clone();
            resegmented.resegment_at(&boundaries);
            assert!(resegmented.segment_count() >= 4);

            assert_eq!(replay_batch(&resegmented, &configs, 1_000_000), expected);
            let decoded = Trace::from_bytes(&resegmented.to_bytes()).unwrap();
            assert_eq!(decoded, resegmented, "v2 codec must preserve the segmentation");
        }
    }

    #[test]
    fn streamed_replay_matches_in_memory_replay() {
        let base = LeonConfig::base();
        let configs = mixed_batch(&base);
        for program in [demo_program(), recursing_program()] {
            let (_, mut trace) = capture(&base, &program, 1_000_000).unwrap();
            // cut into several segments so streaming actually iterates
            let step = (trace.ops.len() / 5).max(1);
            let boundaries: Vec<usize> = (0..trace.ops.len()).step_by(step).collect();
            trace.resegment_at(&boundaries);

            let bytes = trace.to_bytes();
            let streamed = StreamedTrace::open(Box::new(bytes.clone())).unwrap();
            assert_eq!(streamed.segment_count(), trace.segment_count());
            assert_eq!(streamed.header().captured, trace.captured);

            let got = replay_batch_streamed(&streamed, &configs, 1_000_000).unwrap();
            assert_eq!(got, replay_batch(&trace, &configs, 1_000_000));

            // payload corruption passes open() (header-only) but is caught
            // by the damaged segment's checksum on load
            let mut damaged = bytes.clone();
            let target = V2_PREFIX_LEN + trace.segment_count() * SEGMENT_INFO_LEN;
            damaged[target] ^= 0x40; // first byte of segment 0's payload
            let opened = StreamedTrace::open(Box::new(damaged)).unwrap();
            assert!(opened.load_segment(0).unwrap_err().to_string().contains("checksum"));
        }
    }

    #[test]
    fn v1_traces_still_decode_and_replay() {
        let base = LeonConfig::base();
        let (_, trace) = capture(&base, &recursing_program(), 1_000_000).unwrap();
        let bytes = trace.to_bytes_v1();

        let header = Trace::peek_header(&bytes).unwrap();
        assert_eq!(header.version, 1);
        assert!(header.segments.is_empty() && header.summary.is_none());

        // full decode re-derives the default segmentation and folded stream
        let decoded = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, trace);
        let configs = mixed_batch(&base);
        assert_eq!(
            replay_batch(&decoded, &configs, 1_000_000),
            replay_batch(&trace, &configs, 1_000_000)
        );

        // the streaming opener refuses v1 with a pointed error
        let err = StreamedTrace::open(Box::new(bytes)).unwrap_err();
        assert!(err.to_string().contains("streamed"), "unexpected error: {err}");
    }

    #[test]
    fn segment_walkers_tick_the_segment_counter() {
        let base = LeonConfig::base();
        let (_, mut trace) = capture(&base, &recursing_program(), 1_000_000).unwrap();
        let step = (trace.ops.len() / 4).max(1);
        let boundaries: Vec<usize> = (0..trace.ops.len()).step_by(step).collect();
        trace.resegment_at(&boundaries);
        let segments = trace.segment_count() as u64;
        assert!(segments >= 3);

        let configs = mixed_batch(&base);
        let plan = ReplayBatch::new(&trace, &configs, 1_000_000);
        let walks_before = trace_walks_performed();
        let segs_before = trace_segments_walked();
        let mem = plan.walk_mem_span(0..plan.mem_class_count());
        let fetch = plan.walk_fetch_span(0..plan.fetch_class_count());
        assert_eq!(trace_walks_performed() - walks_before, 2);
        assert_eq!(trace_segments_walked() - segs_before, 2 * segments);

        // per-segment partials reduce to exactly the fused span results
        let mut walker = plan.mem_span_walker(0..plan.mem_class_count());
        let partials: Vec<MemSegmentPartial> =
            (0..walker.segment_count()).map(|seg| walker.walk_segment(seg)).collect();
        assert_eq!(plan.reduce_mem_partials(0..plan.mem_class_count(), &partials), mem);
        let mut walker = plan.fetch_span_walker(0..plan.fetch_class_count());
        let partials: Vec<FetchSegmentPartial> =
            (0..walker.segment_count()).map(|seg| walker.walk_segment(seg)).collect();
        assert_eq!(plan.reduce_fetch_partials(0..plan.fetch_class_count(), &partials), fetch);
    }
}
