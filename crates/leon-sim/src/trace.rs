//! Trace capture and replay retiming.
//!
//! The measurement phase of the paper (Section 3) evaluates ~52 one-at-a-time
//! perturbations per application, and the Figure 2 study exhaustively sweeps
//! the d-cache geometry.  In an in-order, blocking LEON2 model, cache and
//! timing perturbations cannot change the instruction or memory-address
//! stream — only how many cycles each event costs.  So the stream only has to
//! be produced once: the first functional run records a compact execution
//! trace, and every perturbation is retimed by [`replay`] — no decode, no
//! ALU, no architectural state.
//!
//! # What the trace stores
//!
//! * [`Trace::ops`] — one [`TraceOp`] per eventful instruction (loads,
//!   stores, branches, multiplies, window rotations, …), with runs of
//!   event-free sequential fetches inside one 16-byte block (the minimum
//!   line size, so "same cache line" holds under every valid geometry)
//!   run-length compressed into a single record;
//! * [`Trace::mem`] — just the data-cache-relevant stream: load/store
//!   effective addresses and `save`/`restore` rotations with their
//!   (architecturally configuration-independent) stack pointers;
//! * [`Trace::summary`] — configuration-independent event *counts*;
//! * the capturing configuration and its cache statistics.
//!
//! # How replay retimes a configuration
//!
//! Total cycles decompose into `Σ events × cost(event, config)`, and only
//! cache hit/miss behaviour needs stateful re-simulation:
//!
//! 1. **i-cache**: if the replayed i-cache geometry equals the capturing
//!    one, its statistics are reused verbatim; otherwise the fetch stream in
//!    `ops` is re-walked through a fresh [`Cache`].
//! 2. **d-cache + window traps**: if both the d-cache geometry and the
//!    register-window count match, the captured statistics are reused;
//!    otherwise `mem` is re-walked — a resident-window automaton re-derives
//!    overflow/underflow traps for the window count under evaluation and
//!    expands each trap into its 16 spill/fill accesses.
//! 3. **everything else** (latency options, decode/jump/interlock, fast
//!    read/write, multiplier/divider, memory timing) is closed-form
//!    arithmetic over [`TraceSummary`] — O(1).
//!
//! A cost-table measurement of the paper's 52-variable space therefore runs
//! the full simulator once and replays 52 times, where 14 IU-only replays
//! are O(1), 28 walk only the memory stream, and 11 walk only the fetch
//! stream.
//!
//! Replay is bit-identical to full simulation — same final `cycles` and
//! cache statistics — which `tests/replay_equivalence.rs` asserts across the
//! benchmark suite × a grid of perturbations.  The `max_cycles` budget is a
//! bound on the run *total* in both engines: a run first pushed past the
//! budget by its very last instruction errors identically here and in
//! [`crate::Cpu::run`] (see `budget_boundary_is_identical_to_simulation`).
//!
//! Traces are plain data (`Send + Sync`): one captured trace is shared
//! read-only by every replay worker of a measurement campaign.

use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::cache::{Cache, CacheStats, TagCache};
use crate::config::{CacheConfig, LeonConfig};
use crate::error::SimError;
use crate::profiler::Stats;

/// Process-wide count of trace-stream walks: one tick per pass over a trace's
/// record or memory stream, whether it re-simulates one cache model (the
/// per-config [`replay`] path) or a whole span of behavior classes at once
/// (the batched [`ReplayBatch`] path).  Closed-form retimes never walk and
/// never tick.
///
/// This is the batched engine's headline counter, next to
/// `workloads::guest_instructions_executed` and
/// `workloads::trace_payload_bytes_read`: a batched 52-variable cost-table
/// measurement must perform at most one walk per distinct behavior class —
/// and exactly one pass per stream when the classes are not partitioned
/// across workers — which `tests/batch_walk_budget.rs` asserts against
/// deltas of this counter.
static TRACE_WALKS: AtomicU64 = AtomicU64::new(0);

/// Total trace-stream walks performed so far by this process.  Monotonic;
/// compare deltas rather than resetting, so concurrent measurements cannot
/// clobber each other.
pub fn trace_walks_performed() -> u64 {
    TRACE_WALKS.load(Ordering::Relaxed)
}

/// Record one pass over a trace stream.
fn record_trace_walk() {
    TRACE_WALKS.fetch_add(1, Ordering::Relaxed);
}

/// Flag bits of one [`TraceOp`].  A bit records that the *event occurred* in
/// the instruction stream; whether and how many cycles it costs is decided at
/// replay time from the configuration under evaluation.  A record with no
/// flag bits is a compressed run of `aux` event-free sequential fetches.
pub mod flags {
    /// The instruction uses a slow-decode format (`sethi`/`save`/`restore`/
    /// `jmpl`); costs one extra cycle unless fast decode is enabled.
    pub const SLOW_DECODE: u16 = 1 << 0;
    /// The instruction consumes the destination of the immediately preceding
    /// load (load-use interlock); costs `load_delay` cycles.
    pub const LOAD_USE: u16 = 1 << 1;
    /// A conditional branch immediately following an icc-setting instruction;
    /// costs one cycle when the ICC-hold interlock is configured.
    pub const ICC_BRANCH: u16 = 1 << 2;
    /// Hardware multiply.
    pub const MUL: u16 = 1 << 3;
    /// Hardware divide.
    pub const DIV: u16 = 1 << 4;
    /// Memory load; `aux` holds the effective address.
    pub const LOAD: u16 = 1 << 5;
    /// Memory store; `aux` holds the effective address.
    pub const STORE: u16 = 1 << 6;
    /// Conditional branch.
    pub const BRANCH: u16 = 1 << 7;
    /// The branch was taken (fetch refill cycle).
    pub const TAKEN: u16 = 1 << 8;
    /// Call or indirect jump (`call`/`jmpl` address-generation cycles).
    pub const CALL: u16 = 1 << 9;
    /// Register-window rotation forward (`save`); `aux` holds the
    /// (architectural, configuration-independent) post-save stack pointer a
    /// spill would write through.
    pub const SAVE: u16 = 1 << 10;
    /// Register-window rotation backward (`restore`); `aux` holds the
    /// post-restore stack pointer a fill would read through.
    pub const RESTORE: u16 = 1 << 11;
}

/// One trace record: a single eventful instruction, or a compressed run of
/// event-free sequential fetches when `flags == 0`.
///
/// 12 bytes per record: the fetch address (for the i-cache), an event
/// bitmask, and one auxiliary word (load/store effective address, save/
/// restore stack pointer, or the run length of a compressed fetch run).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// Program counter of the (first) fetch.
    pub pc: u32,
    /// Event bits from [`flags`]; `0` marks a compressed fetch run.
    pub flags: u16,
    /// Effective address (loads/stores), trap stack pointer (save/restore),
    /// or run length in instructions (compressed fetch runs).
    pub aux: u32,
}

impl TraceOp {
    /// A single event-free fetch (a run of length 1).
    pub fn fetch(pc: u32) -> TraceOp {
        TraceOp { pc, flags: 0, aux: 1 }
    }

    /// Dynamic instructions this record retires.
    pub fn instructions(&self) -> u64 {
        if self.flags == 0 {
            self.aux as u64
        } else {
            1
        }
    }
}

/// The data-cache-relevant events, extracted into their own dense stream so
/// that d-cache and register-window perturbations replay without touching
/// the (much longer) fetch stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemOp {
    /// Data-cache read at this effective address.
    Load(u32),
    /// Data-cache write at this effective address.
    Store(u32),
    /// Window rotation forward; spills write through this stack pointer when
    /// the replayed window file overflows.
    Save(u32),
    /// Window rotation backward; fills read through this stack pointer when
    /// the replayed window file underflows.
    Restore(u32),
}

/// Configuration-independent event counts of a captured run: everything the
/// cycle model charges for, minus the cache behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Dynamic instructions.
    pub instructions: u64,
    /// Instructions with a slow-decode format.
    pub slow_decode: u64,
    /// Load-use interlock occurrences.
    pub load_use: u64,
    /// Branches immediately following an icc-setting instruction.
    pub icc_branch: u64,
    /// Hardware multiplies.
    pub mul_ops: u64,
    /// Hardware divides.
    pub div_ops: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Taken conditional branches.
    pub taken_branches: u64,
    /// Calls and indirect jumps.
    pub calls: u64,
    /// `save` rotations.
    pub saves: u64,
    /// `restore` rotations.
    pub restores: u64,
}

/// A captured execution trace: the full timing-relevant event stream of one
/// program run, independent of every Figure 1 parameter (including the
/// register-window count — window traps are re-derived at replay time).
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Per-instruction records with fetch-run compression, in execution order.
    pub ops: Vec<TraceOp>,
    /// The data-cache/window event stream (see [`MemOp`]), in execution order.
    pub mem: Vec<MemOp>,
    /// Configuration-independent event counts.
    pub summary: TraceSummary,
    /// The configuration the trace was captured on.
    pub captured: LeonConfig,
    /// I-cache statistics of the capturing run (reused verbatim when the
    /// replayed i-cache geometry matches).
    pub base_icache: CacheStats,
    /// D-cache statistics of the capturing run (include window-trap traffic).
    pub base_dcache: CacheStats,
    /// Window overflow traps of the capturing run.
    pub base_overflows: u64,
    /// Window underflow traps of the capturing run.
    pub base_underflows: u64,
}

impl Trace {
    /// Number of records (compressed runs count once).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Dynamic instruction count of the captured run.
    pub fn instructions(&self) -> u64 {
        self.summary.instructions
    }

    /// Approximate in-memory footprint of the trace buffers, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.ops.len() * std::mem::size_of::<TraceOp>()
            + self.mem.len() * std::mem::size_of::<MemOp>()
    }

    /// Build the derived streams (`mem`, `summary`) from a raw record stream.
    ///
    /// The derived streams are a pure function of `ops`, so they are *not*
    /// serialised by [`Trace::to_bytes`]: a decoded trace rebuilds them here,
    /// which both shrinks the on-disk format and makes an internally
    /// inconsistent (ops vs. mem/summary) trace unrepresentable.
    fn derive_streams(ops: &[TraceOp]) -> (TraceSummary, Vec<MemOp>) {
        let mut summary = TraceSummary::default();
        let mut mem = Vec::new();
        for op in ops {
            let f = op.flags;
            if f == 0 {
                summary.instructions += op.aux as u64;
                continue;
            }
            summary.instructions += 1;
            summary.slow_decode += (f & flags::SLOW_DECODE != 0) as u64;
            summary.load_use += (f & flags::LOAD_USE != 0) as u64;
            summary.icc_branch += (f & flags::ICC_BRANCH != 0) as u64;
            summary.mul_ops += (f & flags::MUL != 0) as u64;
            summary.div_ops += (f & flags::DIV != 0) as u64;
            summary.branches += (f & flags::BRANCH != 0) as u64;
            summary.taken_branches += (f & flags::TAKEN != 0) as u64;
            summary.calls += (f & flags::CALL != 0) as u64;
            if f & flags::LOAD != 0 {
                summary.loads += 1;
                mem.push(MemOp::Load(op.aux));
            }
            if f & flags::STORE != 0 {
                summary.stores += 1;
                mem.push(MemOp::Store(op.aux));
            }
            if f & flags::SAVE != 0 {
                summary.saves += 1;
                mem.push(MemOp::Save(op.aux));
            }
            if f & flags::RESTORE != 0 {
                summary.restores += 1;
                mem.push(MemOp::Restore(op.aux));
            }
        }
        (summary, mem)
    }

    /// Build the derived streams (`mem`, `summary`) from a raw record stream
    /// and the capturing run's results.
    fn assemble(ops: Vec<TraceOp>, captured: &LeonConfig, stats: &Stats) -> Trace {
        let (summary, mem) = Trace::derive_streams(&ops);
        debug_assert_eq!(summary.instructions, stats.instructions);
        debug_assert_eq!(summary.loads, stats.loads);
        debug_assert_eq!(summary.stores, stats.stores);
        debug_assert_eq!(summary.branches, stats.branches);
        Trace {
            ops,
            mem,
            summary,
            captured: *captured,
            base_icache: stats.icache,
            base_dcache: stats.dcache,
            base_overflows: stats.window_overflows,
            base_underflows: stats.window_underflows,
        }
    }
}

// ---------------------------------------------------------------------------
// Versioned binary serialization
// ---------------------------------------------------------------------------

/// Version number of the binary trace format produced by [`Trace::to_bytes`].
///
/// Bump this whenever the record layout, the captured-configuration encoding
/// or the semantics of any serialised field change: persisted traces carry
/// the version they were written with, and [`Trace::from_bytes`] refuses to
/// decode any other version, so stale artifacts fall back to recapture
/// instead of silently mis-replaying.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// Magic bytes opening every serialised trace.
const TRACE_MAGIC: [u8; 4] = *b"LTRC";

/// Error decoding a serialised trace (wrong magic/version, checksum
/// mismatch, truncation, or a malformed field).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceCodecError(String);

impl TraceCodecError {
    fn new(message: impl Into<String>) -> TraceCodecError {
        TraceCodecError(message.into())
    }
}

impl std::fmt::Display for TraceCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace decode error: {}", self.0)
    }
}

impl std::error::Error for TraceCodecError {}

/// The FNV-1a offset basis: the initial state of [`fnv1a64`].
pub const FNV1A64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Continue a 64-bit FNV-1a hash from `hash` over `bytes` (for incremental
/// multi-field hashing; start from [`FNV1A64_OFFSET`]).
pub fn fnv1a64_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// 64-bit FNV-1a over a byte stream — the integrity checksum of the binary
/// trace format (fast, dependency-free, and plenty for corruption detection;
/// this is not a cryptographic guarantee).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_extend(FNV1A64_OFFSET, bytes)
}

struct ByteWriter(Vec<u8>);

impl ByteWriter {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
}

struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceCodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| TraceCodecError::new("unexpected end of input"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, TraceCodecError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, TraceCodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, TraceCodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, TraceCodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bool(&mut self) -> Result<bool, TraceCodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(TraceCodecError::new(format!("invalid bool byte {other}"))),
        }
    }
}

fn encode_cache_config(w: &mut ByteWriter, c: &CacheConfig) {
    w.u8(c.ways);
    w.u32(c.way_kb);
    w.u8(c.line_words);
    w.u8(match c.replacement {
        crate::config::ReplacementPolicy::Random => 0,
        crate::config::ReplacementPolicy::Lrr => 1,
        crate::config::ReplacementPolicy::Lru => 2,
    });
}

fn decode_cache_config(r: &mut ByteReader) -> Result<CacheConfig, TraceCodecError> {
    Ok(CacheConfig {
        ways: r.u8()?,
        way_kb: r.u32()?,
        line_words: r.u8()?,
        replacement: match r.u8()? {
            0 => crate::config::ReplacementPolicy::Random,
            1 => crate::config::ReplacementPolicy::Lrr,
            2 => crate::config::ReplacementPolicy::Lru,
            other => {
                return Err(TraceCodecError::new(format!("invalid replacement tag {other}")))
            }
        },
    })
}

fn encode_config(w: &mut ByteWriter, c: &LeonConfig) {
    encode_cache_config(w, &c.icache);
    encode_cache_config(w, &c.dcache);
    w.u8(c.dcache_fast_read as u8);
    w.u8(c.dcache_fast_write as u8);
    w.u8(c.iu.fast_jump as u8);
    w.u8(c.iu.icc_hold as u8);
    w.u8(c.iu.fast_decode as u8);
    w.u8(c.iu.load_delay);
    w.u8(c.iu.reg_windows);
    w.u8(match c.iu.divider {
        crate::config::Divider::Radix2 => 0,
        crate::config::Divider::None => 1,
    });
    let mul = crate::config::Multiplier::ALL
        .iter()
        .position(|&m| m == c.iu.multiplier)
        .expect("every multiplier variant is listed in Multiplier::ALL");
    w.u8(mul as u8);
    w.u8(c.synthesis.infer_mult_div as u8);
    w.u32(c.memory.read_first);
    w.u32(c.memory.read_burst);
    w.u32(c.memory.write);
    w.u32(c.clock_mhz);
}

fn decode_config(r: &mut ByteReader) -> Result<LeonConfig, TraceCodecError> {
    let icache = decode_cache_config(r)?;
    let dcache = decode_cache_config(r)?;
    let dcache_fast_read = r.bool()?;
    let dcache_fast_write = r.bool()?;
    let fast_jump = r.bool()?;
    let icc_hold = r.bool()?;
    let fast_decode = r.bool()?;
    let load_delay = r.u8()?;
    let reg_windows = r.u8()?;
    let divider = match r.u8()? {
        0 => crate::config::Divider::Radix2,
        1 => crate::config::Divider::None,
        other => return Err(TraceCodecError::new(format!("invalid divider tag {other}"))),
    };
    let mul_tag = r.u8()? as usize;
    let multiplier = *crate::config::Multiplier::ALL
        .get(mul_tag)
        .ok_or_else(|| TraceCodecError::new(format!("invalid multiplier tag {mul_tag}")))?;
    let infer_mult_div = r.bool()?;
    let memory = crate::config::MemoryTiming {
        read_first: r.u32()?,
        read_burst: r.u32()?,
        write: r.u32()?,
    };
    let clock_mhz = r.u32()?;
    Ok(LeonConfig {
        icache,
        dcache,
        dcache_fast_read,
        dcache_fast_write,
        iu: crate::config::IuConfig {
            fast_jump,
            icc_hold,
            fast_decode,
            load_delay,
            reg_windows,
            divider,
            multiplier,
        },
        synthesis: crate::config::SynthesisConfig { infer_mult_div },
        memory,
        clock_mhz,
    })
}

fn encode_cache_stats(w: &mut ByteWriter, s: &CacheStats) {
    w.u64(s.read_hits);
    w.u64(s.read_misses);
    w.u64(s.write_hits);
    w.u64(s.write_misses);
}

fn decode_cache_stats(r: &mut ByteReader) -> Result<CacheStats, TraceCodecError> {
    Ok(CacheStats {
        read_hits: r.u64()?,
        read_misses: r.u64()?,
        write_hits: r.u64()?,
        write_misses: r.u64()?,
    })
}

/// The fixed-size header of a serialised trace, decodable without touching
/// the record stream (see [`Trace::peek_header`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceHeader {
    /// The serialised format version (always [`TRACE_FORMAT_VERSION`] on a
    /// successful peek).
    pub version: u32,
    /// The configuration the trace was captured on.
    pub captured: LeonConfig,
    /// I-cache statistics of the capturing run.
    pub base_icache: CacheStats,
    /// D-cache statistics of the capturing run.
    pub base_dcache: CacheStats,
    /// Window overflow traps of the capturing run.
    pub base_overflows: u64,
    /// Window underflow traps of the capturing run.
    pub base_underflows: u64,
    /// Number of trace records in the (unread) record stream.
    pub records: u64,
}

impl Trace {
    /// Serialise the trace into the versioned binary format.
    ///
    /// Layout (all integers little-endian): the magic `LTRC`, the
    /// [`TRACE_FORMAT_VERSION`], the capturing configuration, the capturing
    /// run's cache statistics and window-trap counts, the record stream
    /// (10 bytes per [`TraceOp`]), and a trailing 64-bit FNV-1a checksum over
    /// everything before it.  The derived streams (`mem`, `summary`) are
    /// rebuilt on decode, not stored.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter(Vec::with_capacity(32 + self.ops.len() * 10 + 8));
        w.0.extend_from_slice(&TRACE_MAGIC);
        w.u32(TRACE_FORMAT_VERSION);
        encode_config(&mut w, &self.captured);
        encode_cache_stats(&mut w, &self.base_icache);
        encode_cache_stats(&mut w, &self.base_dcache);
        w.u64(self.base_overflows);
        w.u64(self.base_underflows);
        w.u64(self.ops.len() as u64);
        for op in &self.ops {
            w.u32(op.pc);
            w.u16(op.flags);
            w.u32(op.aux);
        }
        let checksum = fnv1a64(&w.0);
        w.u64(checksum);
        w.0
    }

    /// Decode only the fixed-size header of a serialised trace — O(header)
    /// regardless of how many records follow, because neither the record
    /// stream nor the trailing checksum is read.
    ///
    /// This is the *peek* half of the lazy-materialization contract: a store
    /// layer can check the format version, the capturing configuration and
    /// the record count of a multi-megabyte trace entry without paying the
    /// full decode (stream walk + checksum + derived-stream rebuild).  It is
    /// **not** an integrity check — a bit flip in the record stream passes
    /// `peek_header` and is only caught by [`Trace::from_bytes`] — so
    /// callers must still decode fully before trusting the records.
    pub fn peek_header(bytes: &[u8]) -> Result<TraceHeader, TraceCodecError> {
        if bytes.len() < TRACE_MAGIC.len() + 4 + 8 {
            return Err(TraceCodecError::new("input shorter than the fixed header"));
        }
        let body = &bytes[..bytes.len() - 8];
        let mut r = ByteReader { bytes: body, pos: 0 };
        if r.take(4)? != TRACE_MAGIC {
            return Err(TraceCodecError::new("bad magic (not a serialised trace)"));
        }
        let version = r.u32()?;
        if version != TRACE_FORMAT_VERSION {
            return Err(TraceCodecError::new(format!(
                "unsupported trace format version {version} (expected {TRACE_FORMAT_VERSION})"
            )));
        }
        let captured = decode_config(&mut r)?;
        captured
            .validate()
            .map_err(|e| TraceCodecError::new(format!("invalid captured configuration: {e}")))?;
        let base_icache = decode_cache_stats(&mut r)?;
        let base_dcache = decode_cache_stats(&mut r)?;
        let base_overflows = r.u64()?;
        let base_underflows = r.u64()?;
        let records = r.u64()?;
        // records are 10 bytes each; the length prefix must match the input
        if records.checked_mul(10).map(|need| need != (body.len() - r.pos) as u64).unwrap_or(true)
        {
            return Err(TraceCodecError::new(format!(
                "record count {records} does not match the remaining payload"
            )));
        }
        Ok(TraceHeader {
            version,
            captured,
            base_icache,
            base_dcache,
            base_overflows,
            base_underflows,
            records,
        })
    }

    /// Decode a trace serialised by [`Trace::to_bytes`].
    ///
    /// Fails — rather than ever producing a wrong trace — on a bad magic, a
    /// different format version, a checksum mismatch, truncated or trailing
    /// bytes, or any malformed field.  On success the decoded trace is
    /// exactly the one serialised (`mem` and `summary` are re-derived from
    /// the record stream).
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceCodecError> {
        if bytes.len() < TRACE_MAGIC.len() + 4 + 8 {
            return Err(TraceCodecError::new("input shorter than the fixed header"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        let actual = fnv1a64(body);
        if stored != actual {
            return Err(TraceCodecError::new(format!(
                "checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
            )));
        }

        let mut r = ByteReader { bytes: body, pos: 0 };
        if r.take(4)? != TRACE_MAGIC {
            return Err(TraceCodecError::new("bad magic (not a serialised trace)"));
        }
        let version = r.u32()?;
        if version != TRACE_FORMAT_VERSION {
            return Err(TraceCodecError::new(format!(
                "unsupported trace format version {version} (expected {TRACE_FORMAT_VERSION})"
            )));
        }
        let captured = decode_config(&mut r)?;
        captured
            .validate()
            .map_err(|e| TraceCodecError::new(format!("invalid captured configuration: {e}")))?;
        let base_icache = decode_cache_stats(&mut r)?;
        let base_dcache = decode_cache_stats(&mut r)?;
        let base_overflows = r.u64()?;
        let base_underflows = r.u64()?;
        let count = r.u64()? as usize;
        // each record is 10 bytes; reject length prefixes the input cannot hold
        if count.checked_mul(10).map(|need| need != body.len() - r.pos).unwrap_or(true) {
            return Err(TraceCodecError::new(format!(
                "record count {count} does not match the remaining payload"
            )));
        }
        let mut ops = Vec::with_capacity(count);
        for _ in 0..count {
            ops.push(TraceOp { pc: r.u32()?, flags: r.u16()?, aux: r.u32()? });
        }
        let (summary, mem) = Trace::derive_streams(&ops);
        Ok(Trace {
            ops,
            mem,
            summary,
            captured,
            base_icache,
            base_dcache,
            base_overflows,
            base_underflows,
        })
    }
}

thread_local! {
    /// Per-worker scratch model reused by the per-config walkers
    /// ([`walk_mem`], [`walk_fetches`]): a sweep over N geometries re-shapes
    /// one model N times ([`Cache::reconfigure`]) instead of allocating N
    /// line vectors.  Reconfiguring restores the exact just-constructed
    /// state, so reuse is invisible to the walk results.
    static WALK_SCRATCH: RefCell<Option<Cache>> = const { RefCell::new(None) };
}

/// Run `walk` on a scratch [`Cache`] shaped as `config` (fresh-state
/// semantics, reused allocation).
fn with_scratch_cache<R>(config: CacheConfig, walk: impl FnOnce(&mut Cache) -> R) -> R {
    WALK_SCRATCH.with(|slot| {
        let mut slot = slot.borrow_mut();
        let cache = slot.get_or_insert_with(|| Cache::new(config));
        cache.reconfigure(config);
        walk(cache)
    })
}

/// Re-walk the memory stream for a d-cache and/or window-count perturbation:
/// re-derives window traps with the resident-window automaton (mirroring
/// [`crate::regwin::RegisterWindows`]) and expands each trap into its 16
/// spill/fill accesses.  Returns the d-cache statistics plus trap counts.
fn walk_mem(trace: &Trace, config: &LeonConfig) -> (CacheStats, u64, u64) {
    record_trace_walk();
    with_scratch_cache(config.dcache, |dcache| {
        let nwindows = config.iu.reg_windows as u32;
        let mut resident: u32 = 1;
        let mut overflows: u64 = 0;
        let mut underflows: u64 = 0;
        for op in &trace.mem {
            match *op {
                MemOp::Load(addr) => {
                    dcache.read(addr);
                }
                MemOp::Store(addr) => {
                    dcache.write(addr);
                }
                MemOp::Save(sp) => {
                    if resident >= nwindows - 1 {
                        overflows += 1;
                        for i in 0..crate::cpu::WINDOW_TRAP_REGS {
                            dcache.write(sp.wrapping_sub(4 + i * 4));
                        }
                    } else {
                        resident += 1;
                    }
                }
                MemOp::Restore(sp) => {
                    if resident <= 1 {
                        underflows += 1;
                        for i in 0..crate::cpu::WINDOW_TRAP_REGS {
                            dcache.read(sp.wrapping_sub(4 + i * 4));
                        }
                    } else {
                        resident -= 1;
                    }
                }
            }
        }
        (dcache.stats(), overflows, underflows)
    })
}

/// Re-walk the fetch stream for an i-cache perturbation.
fn walk_fetches(trace: &Trace, icache_config: CacheConfig) -> CacheStats {
    record_trace_walk();
    with_scratch_cache(icache_config, |icache| {
        for op in &trace.ops {
            if op.flags == 0 {
                icache.read_run(op.pc, op.aux as u64 - 1);
            } else {
                icache.read(op.pc);
            }
        }
        icache.stats()
    })
}

/// Closed-form cycle reconstruction shared by [`replay`] and
/// [`ReplayBatch::finish`] (mirrors `Cpu::step`'s charges): given a
/// configuration's cache behaviour and window-trap counts, rebuild the exact
/// [`Stats`] a full run would produce, enforcing the cycle budget as a bound
/// on the run total.
fn reconstruct_stats(
    trace: &Trace,
    config: &LeonConfig,
    icache: CacheStats,
    dcache: CacheStats,
    window_overflows: u64,
    window_underflows: u64,
    max_cycles: u64,
) -> Result<Stats, SimError> {
    let s = &trace.summary;
    let m = &config.memory;
    let icache_fill = (m.read_first + (config.icache.line_words as u32 - 1) * m.read_burst) as u64;
    let dcache_fill = (m.read_first + (config.dcache.line_words as u32 - 1) * m.read_burst) as u64;
    let dread_hit: u64 = if config.dcache_fast_read { 0 } else { 1 };
    let dwrite_hit: u64 = if config.dcache_fast_write { 0 } else { 1 };

    let load_use_stalls = s.load_use * config.iu.load_delay as u64;
    let icc_hold_stalls = if config.iu.icc_hold { s.icc_branch } else { 0 };
    let traps = window_overflows + window_underflows;
    let cycles = s.instructions
        + icache.read_misses * icache_fill
        + if config.iu.fast_decode { 0 } else { s.slow_decode }
        + load_use_stalls
        + icc_hold_stalls
        + s.mul_ops * (config.iu.multiplier.latency() - 1) as u64
        + s.div_ops * (config.iu.divider.latency() - 1) as u64
        + s.taken_branches
        + s.calls * if config.iu.fast_jump { 1 } else { 2 }
        + dcache.read_hits * dread_hit
        + dcache.read_misses * (dread_hit + dcache_fill)
        + dcache.write_hits * dwrite_hit
        + dcache.write_misses * (dwrite_hit + 1)
        + traps * (crate::cpu::WINDOW_TRAP_OVERHEAD + crate::cpu::WINDOW_TRAP_REGS as u64);

    if cycles > max_cycles {
        return Err(SimError::CycleLimitExceeded { limit: max_cycles });
    }

    Ok(Stats {
        cycles,
        instructions: s.instructions,
        icache,
        dcache,
        loads: s.loads,
        stores: s.stores,
        branches: s.branches,
        taken_branches: s.taken_branches,
        calls: s.calls,
        mul_ops: s.mul_ops,
        div_ops: s.div_ops,
        window_overflows,
        window_underflows,
        icc_hold_stalls,
        load_use_stalls,
    })
}

/// Retime a captured trace under `config`, producing the exact [`Stats`] a
/// full simulation of the same program on `config` would produce — in a
/// fraction of the time, because only the caches (and only the *changed*
/// caches) are re-simulated while every other cost is closed-form.
pub fn replay(trace: &Trace, config: &LeonConfig, max_cycles: u64) -> Result<Stats, SimError> {
    config
        .validate()
        .map_err(|e| SimError::InvalidConfig(e.to_string()))?;

    // 1. i-cache behaviour (identical geometry => identical statistics)
    let icache = if config.icache == trace.captured.icache {
        trace.base_icache
    } else {
        walk_fetches(trace, config.icache)
    };

    // 2. d-cache + window-trap behaviour
    let same_mem_behaviour = config.dcache == trace.captured.dcache
        && config.iu.reg_windows == trace.captured.iu.reg_windows;
    let (dcache, window_overflows, window_underflows) = if same_mem_behaviour {
        (trace.base_dcache, trace.base_overflows, trace.base_underflows)
    } else {
        walk_mem(trace, config)
    };

    // 3. closed-form cycle reconstruction
    reconstruct_stats(trace, config, icache, dcache, window_overflows, window_underflows, max_cycles)
}

// ---------------------------------------------------------------------------
// Batched replay: retime every configuration of a sweep in one trace walk
// ---------------------------------------------------------------------------

/// Behaviour class of the memory walk: a distinct (d-cache geometry,
/// register-window count) pair.  Every other Figure 1 knob is a pure
/// closed-form retime, so two configurations in the same class share one
/// memory walk bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct MemClass {
    dcache: CacheConfig,
    reg_windows: u8,
}

/// Entries per resolved-access block of the batched walkers: 4096 × 8 bytes
/// = 32 KB, so a block plus the tags one class touches while streaming
/// through it stay cache-resident.
const WALK_BLOCK: usize = 4096;

/// Accesses one window trap expands into (16 spills or fills).
const TRAP_ACCESSES: usize = crate::cpu::WINDOW_TRAP_REGS as usize;

/// Resident-window automaton shared by every memory class with one window
/// count: trap decisions depend only on the count, so the automaton (and
/// its trap totals) runs once per distinct count and its expansions are
/// applied to each member class's cache.
struct WindowGroup {
    nwindows: u32,
    resident: u32,
    overflows: u64,
    underflows: u64,
    members: Vec<usize>,
}

/// Per-configuration disposition within a [`ReplayBatch`].
#[derive(Clone, Debug)]
enum Disposition {
    /// Failed validation; [`replay`] would fail with exactly this error.
    Invalid(SimError),
    /// Valid: which walk classes (if any) this configuration's cache
    /// statistics come from.  `None` means the captured geometry matches and
    /// the capturing run's statistics are reused verbatim.
    Valid { mem_class: Option<usize>, fetch_class: Option<usize> },
}

/// A planned batch replay: every configuration of a sweep partitioned into
/// *behavior classes*, so that one pass over each trace stream retimes the
/// whole batch.
///
/// The paper's central experiments — the 52-variable cost table and the
/// exhaustive d-cache sweep — evaluate many configurations against one fixed
/// program behaviour.  Per-config [`replay`] walks the trace once per
/// configuration; this plan walks each stream **once**, updating one lean
/// cache model per distinct class simultaneously ([`crate::cache`]'s
/// `TagCache`), and reconstructs every configuration's [`Stats`] closed-form
/// from its class's walk results — bit-identical to element-wise [`replay`]
/// (pinned by `tests/replay_equivalence.rs`).
///
/// The classes of each stream are exposed as an indexable axis
/// ([`ReplayBatch::walk_mem_span`] / [`ReplayBatch::walk_fetch_span`]) so a
/// worker pool can partition *classes* — not configurations — across
/// threads; results are independent of the partitioning, so any thread
/// count produces byte-identical output.  [`replay_batch`] is the serial
/// convenience wrapper: one fused pass per stream.
pub struct ReplayBatch<'a> {
    trace: &'a Trace,
    max_cycles: u64,
    configs: Vec<LeonConfig>,
    dispositions: Vec<Disposition>,
    mem_classes: Vec<MemClass>,
    fetch_classes: Vec<CacheConfig>,
}

impl<'a> ReplayBatch<'a> {
    /// Plan a batch: validate every configuration and partition the batch
    /// into distinct behavior classes (first-appearance order, so the plan
    /// is deterministic for a given configuration sequence).  Performs no
    /// walks.
    pub fn new(trace: &'a Trace, configs: &[LeonConfig], max_cycles: u64) -> ReplayBatch<'a> {
        let mut mem_classes = Vec::new();
        let mut fetch_classes = Vec::new();
        let mut mem_index: HashMap<MemClass, usize> = HashMap::new();
        let mut fetch_index: HashMap<CacheConfig, usize> = HashMap::new();
        let dispositions = configs
            .iter()
            .map(|config| {
                if let Err(e) = config.validate() {
                    return Disposition::Invalid(SimError::InvalidConfig(e.to_string()));
                }
                let mem_class = if config.dcache == trace.captured.dcache
                    && config.iu.reg_windows == trace.captured.iu.reg_windows
                {
                    None
                } else {
                    let key =
                        MemClass { dcache: config.dcache, reg_windows: config.iu.reg_windows };
                    Some(*mem_index.entry(key).or_insert_with(|| {
                        mem_classes.push(key);
                        mem_classes.len() - 1
                    }))
                };
                let fetch_class = if config.icache == trace.captured.icache {
                    None
                } else {
                    Some(*fetch_index.entry(config.icache).or_insert_with(|| {
                        fetch_classes.push(config.icache);
                        fetch_classes.len() - 1
                    }))
                };
                Disposition::Valid { mem_class, fetch_class }
            })
            .collect();
        ReplayBatch {
            trace,
            max_cycles,
            configs: configs.to_vec(),
            dispositions,
            mem_classes,
            fetch_classes,
        }
    }

    /// Number of configurations in the batch.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Number of distinct memory-walk behavior classes.
    pub fn mem_class_count(&self) -> usize {
        self.mem_classes.len()
    }

    /// Number of distinct fetch-walk behavior classes.
    pub fn fetch_class_count(&self) -> usize {
        self.fetch_classes.len()
    }

    /// Total distinct behavior classes (the batch's walk budget: no caller
    /// partitioning can make the engine perform more walks than this).
    pub fn class_count(&self) -> usize {
        self.mem_classes.len() + self.fetch_classes.len()
    }

    /// Walk the memory stream **once**, re-simulating every memory class in
    /// `span` simultaneously: each class's lean d-cache model sees exactly
    /// the access sequence the per-config walk would have produced, and one
    /// resident-window automaton per distinct window count re-derives the
    /// traps shared by every class with that count.  Returns each class's
    /// `(dcache stats, overflows, underflows)` in span order.
    ///
    /// When the whole span shares one window count (every real sweep: the
    /// d-cache study and the cost table's cache variables), the stream is
    /// resolved block-wise into a flat access buffer — the decode and the
    /// trap expansion happen once per block — and each class then runs a
    /// tight loop over the block while its tag array stays hot in L1
    /// (classic cache blocking; the access *order* per class is identical
    /// either way).  Spans mixing window counts fall back to per-record
    /// fan-out, since each group's trap expansions interleave differently.
    pub fn walk_mem_span(&self, span: Range<usize>) -> Vec<(CacheStats, u64, u64)> {
        let classes = &self.mem_classes[span];
        if classes.is_empty() {
            return Vec::new();
        }
        record_trace_walk();
        let mut caches: Vec<TagCache> =
            classes.iter().map(|class| TagCache::new(class.dcache)).collect();

        // one automaton per distinct window count; members index `caches`
        let mut groups: Vec<WindowGroup> = Vec::new();
        for (i, class) in classes.iter().enumerate() {
            let nwindows = class.reg_windows as u32;
            match groups.iter_mut().find(|g| g.nwindows == nwindows) {
                Some(group) => group.members.push(i),
                None => groups.push(WindowGroup {
                    nwindows,
                    resident: 1,
                    overflows: 0,
                    underflows: 0,
                    members: vec![i],
                }),
            }
        }

        if let [group] = groups.as_mut_slice() {
            self.walk_mem_blocked(&mut caches, group);
        } else {
            self.walk_mem_interleaved(&mut caches, &mut groups);
        }

        // hit counts are derived, not maintained: every class in a window
        // group saw exactly loads + 16·underflows reads and stores +
        // 16·overflows writes
        let loads = self.trace.summary.loads;
        let stores = self.trace.summary.stores;
        let mut results: Vec<(CacheStats, u64, u64)> =
            vec![(CacheStats::default(), 0, 0); classes.len()];
        for group in &groups {
            let reads = loads + group.underflows * crate::cpu::WINDOW_TRAP_REGS as u64;
            let writes = stores + group.overflows * crate::cpu::WINDOW_TRAP_REGS as u64;
            for &member in &group.members {
                results[member] =
                    (caches[member].stats(reads, writes), group.overflows, group.underflows);
            }
        }
        results
    }

    /// Single-window-count memory walk: resolve the stream (trap expansions
    /// included) into [`WALK_BLOCK`]-entry access buffers, then fan each
    /// block out class by class.
    ///
    /// The fill compresses *guaranteed hits* away, once for all classes: an
    /// access that strictly-consecutively follows a **read** of the same
    /// 16-byte line (the minimum line size, so "same line" holds under
    /// every geometry) must hit in every class — the read left the line
    /// present and nothing intervened to evict it — so it folds into the
    /// leader's run count instead of being probed per class.  Half to
    /// two-thirds of a typical memory stream compresses away, multiplying
    /// directly into the per-class walk cost.
    fn walk_mem_blocked(&self, caches: &mut [TagCache], group: &mut WindowGroup) {
        const WRITE_BIT: u64 = TagCache::WRITE_BIT;
        const RUN_ONE: u64 = 1 << TagCache::MEM_RUN_SHIFT;
        let mut block: Vec<u64> = Vec::with_capacity(WALK_BLOCK + 2 * TRAP_ACCESSES);
        // 16-byte line established as present by the last entry's read run
        // (None after a write leader — a write never establishes presence)
        let mut run_line: Option<u32> = None;

        let flush = |block: &mut Vec<u64>, run_line: &mut Option<u32>, caches: &mut [TagCache]| {
            for cache in caches.iter_mut() {
                cache.run_mem_block(block);
            }
            block.clear();
            *run_line = None; // never extend an entry across a flush
        };

        let push = |block: &mut Vec<u64>, run_line: &mut Option<u32>, addr: u32, write: bool| {
            if *run_line == Some(addr >> 4) {
                *block.last_mut().expect("a run leader precedes every extension") += RUN_ONE;
            } else {
                block.push(addr as u64 | if write { WRITE_BIT } else { 0 });
                *run_line = (!write).then(|| addr >> 4);
            }
        };

        for op in &self.trace.mem {
            match *op {
                MemOp::Load(addr) => push(&mut block, &mut run_line, addr, false),
                MemOp::Store(addr) => push(&mut block, &mut run_line, addr, true),
                MemOp::Save(sp) => {
                    if group.resident >= group.nwindows - 1 {
                        group.overflows += 1;
                        for i in 0..crate::cpu::WINDOW_TRAP_REGS {
                            push(&mut block, &mut run_line, sp.wrapping_sub(4 + i * 4), true);
                        }
                    } else {
                        group.resident += 1;
                    }
                }
                MemOp::Restore(sp) => {
                    if group.resident <= 1 {
                        group.underflows += 1;
                        for i in 0..crate::cpu::WINDOW_TRAP_REGS {
                            push(&mut block, &mut run_line, sp.wrapping_sub(4 + i * 4), false);
                        }
                    } else {
                        group.resident -= 1;
                    }
                }
            }
            if block.len() >= WALK_BLOCK {
                flush(&mut block, &mut run_line, caches);
            }
        }
        flush(&mut block, &mut run_line, caches);
    }

    /// Mixed-window-count memory walk: fan every record out to all classes
    /// as it is decoded (each group's trap expansions interleave at its own
    /// positions, so a shared resolved buffer does not exist).
    fn walk_mem_interleaved(&self, caches: &mut [TagCache], groups: &mut [WindowGroup]) {
        for op in &self.trace.mem {
            match *op {
                MemOp::Load(addr) => {
                    for cache in caches.iter_mut() {
                        cache.read(addr);
                    }
                }
                MemOp::Store(addr) => {
                    for cache in caches.iter_mut() {
                        cache.write(addr);
                    }
                }
                MemOp::Save(sp) => {
                    for group in groups.iter_mut() {
                        if group.resident >= group.nwindows - 1 {
                            group.overflows += 1;
                            for &member in &group.members {
                                let cache = &mut caches[member];
                                for i in 0..crate::cpu::WINDOW_TRAP_REGS {
                                    cache.write(sp.wrapping_sub(4 + i * 4));
                                }
                            }
                        } else {
                            group.resident += 1;
                        }
                    }
                }
                MemOp::Restore(sp) => {
                    for group in groups.iter_mut() {
                        if group.resident <= 1 {
                            group.underflows += 1;
                            for &member in &group.members {
                                let cache = &mut caches[member];
                                for i in 0..crate::cpu::WINDOW_TRAP_REGS {
                                    cache.read(sp.wrapping_sub(4 + i * 4));
                                }
                            }
                        } else {
                            group.resident -= 1;
                        }
                    }
                }
            }
        }
    }

    /// Walk the fetch stream **once**, re-simulating every fetch class in
    /// `span` simultaneously.  The record stream is decoded block-wise into
    /// flat read entries — the same layout [`ReplayBatch::walk_mem_span`]
    /// uses, run length above `MEM_RUN_SHIFT`, write bit never set — and
    /// each class runs the shared monomorphized block loop (see the memory
    /// walk on why blocking wins).  Returns each class's i-cache statistics
    /// in span order.
    pub fn walk_fetch_span(&self, span: Range<usize>) -> Vec<CacheStats> {
        let classes = &self.fetch_classes[span];
        if classes.is_empty() {
            return Vec::new();
        }
        record_trace_walk();
        let mut caches: Vec<TagCache> =
            classes.iter().map(|&config| TagCache::new(config)).collect();

        // Consecutive records inside one 16-byte block — the captured
        // fetch-run invariant guarantees a compressed run never crosses one
        // — merge into the previous entry's run: after the leading fetch
        // the line is present in every class, so the followers are
        // guaranteed hits (probed by nobody, clock-accounted under LRU).
        const RUN_ONE: u64 = 1 << TagCache::MEM_RUN_SHIFT;
        let mut block: Vec<u64> = Vec::with_capacity(WALK_BLOCK);
        let mut run_line: Option<u32> = None;
        let flush = |block: &mut Vec<u64>, run_line: &mut Option<u32>, caches: &mut [TagCache]| {
            for cache in caches.iter_mut() {
                cache.run_mem_block(block);
            }
            block.clear();
            *run_line = None;
        };
        for op in &self.trace.ops {
            let fetches = if op.flags == 0 { op.aux as u64 } else { 1 };
            if run_line == Some(op.pc >> 4) {
                *block.last_mut().expect("a run leader precedes every extension") +=
                    fetches * RUN_ONE;
            } else {
                block.push(op.pc as u64 | (fetches - 1) * RUN_ONE);
                run_line = Some(op.pc >> 4);
                if block.len() >= WALK_BLOCK {
                    flush(&mut block, &mut run_line, &mut caches);
                }
            }
        }
        flush(&mut block, &mut run_line, &mut caches);

        // every class fetched exactly one read per dynamic instruction
        let fetches = self.trace.summary.instructions;
        caches.iter().map(|cache| cache.stats(fetches, 0)).collect()
    }

    /// Reconstruct every configuration's [`Stats`] closed-form from the walk
    /// results (`mem` and `fetch` are the per-class results, concatenated in
    /// class order).  Element `i` equals `replay(trace, &configs[i],
    /// max_cycles)` exactly, including errors.
    pub fn finish(
        &self,
        mem: &[(CacheStats, u64, u64)],
        fetch: &[CacheStats],
    ) -> Vec<Result<Stats, SimError>> {
        assert_eq!(mem.len(), self.mem_classes.len(), "one walk result per memory class");
        assert_eq!(fetch.len(), self.fetch_classes.len(), "one walk result per fetch class");
        self.dispositions
            .iter()
            .zip(&self.configs)
            .map(|(disposition, config)| match disposition {
                Disposition::Invalid(error) => Err(error.clone()),
                Disposition::Valid { mem_class, fetch_class } => {
                    let icache = match fetch_class {
                        Some(class) => fetch[*class],
                        None => self.trace.base_icache,
                    };
                    let (dcache, overflows, underflows) = match mem_class {
                        Some(class) => mem[*class],
                        None => {
                            (self.trace.base_dcache, self.trace.base_overflows, self.trace.base_underflows)
                        }
                    };
                    reconstruct_stats(
                        self.trace,
                        config,
                        icache,
                        dcache,
                        overflows,
                        underflows,
                        self.max_cycles,
                    )
                }
            })
            .collect()
    }
}

/// Retime every configuration of a batch against one captured trace in a
/// single pass per trace stream.
///
/// Element `i` of the result equals `replay(trace, &configs[i], max_cycles)`
/// bit-for-bit (including `InvalidConfig` and `CycleLimitExceeded` errors),
/// but a batch of N configurations performs at most **two** trace walks —
/// one over the memory stream for all distinct (d-cache geometry, window
/// count) classes, one over the record stream for all distinct i-cache
/// geometries — instead of up to N.  Callers with a worker pool should
/// partition the classes instead (see [`ReplayBatch`]).
pub fn replay_batch(
    trace: &Trace,
    configs: &[LeonConfig],
    max_cycles: u64,
) -> Vec<Result<Stats, SimError>> {
    let plan = ReplayBatch::new(trace, configs, max_cycles);
    let mem = plan.walk_mem_span(0..plan.mem_class_count());
    let fetch = plan.walk_fetch_span(0..plan.fetch_class_count());
    plan.finish(&mem, &fetch)
}

/// Run `program` on `config` once, capturing both the full [`crate::RunResult`]
/// and the execution trace for later replays.
pub fn capture(
    config: &LeonConfig,
    program: &leon_isa::Program,
    max_cycles: u64,
) -> Result<(crate::RunResult, Trace), SimError> {
    let mut cpu = crate::Cpu::new(*config, program)?;
    cpu.enable_trace();
    let result = cpu.run(max_cycles)?;
    let ops = cpu.take_trace().expect("trace was enabled before the run");
    let trace = Trace::assemble(ops, config, &result.stats);
    Ok((result, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Multiplier, ReplacementPolicy};
    use leon_isa::{Asm, Reg};

    fn demo_program() -> leon_isa::Program {
        let mut a = Asm::new("trace-demo");
        a.set(Reg::L0, 64);
        a.set(Reg::L1, 0);
        a.set(Reg::L2, leon_isa::DEFAULT_MEMORY_SIZE / 2);
        a.label("loop");
        a.st(Reg::L1, Reg::L2, 0);
        a.ld(Reg::L3, Reg::L2, 0);
        a.add(Reg::L1, Reg::L3, 1);
        a.smul(Reg::L4, Reg::L1, 3);
        a.add(Reg::L2, Reg::L2, 4);
        a.subcc(Reg::L0, Reg::L0, 1);
        a.bne("loop");
        a.halt();
        a.assemble().unwrap()
    }

    /// A recursive program that overflows and underflows the window file.
    fn recursing_program() -> leon_isa::Program {
        let mut a = Asm::new("recurse");
        a.set(Reg::O0, 12);
        a.call("func");
        a.halt();
        a.label("func");
        a.save(Reg::SP, Reg::SP, -96);
        a.cmp(Reg::I0, 0);
        a.be("leaf");
        a.add(Reg::O0, Reg::I0, -1_i32);
        a.call("func");
        a.label("leaf");
        a.ret_restore();
        a.assemble().unwrap()
    }

    #[test]
    fn capture_matches_plain_simulation() {
        let config = LeonConfig::base();
        for program in [demo_program(), recursing_program()] {
            let plain = crate::simulate(&config, &program, 1_000_000).unwrap();
            let (run, trace) = capture(&config, &program, 1_000_000).unwrap();
            assert_eq!(run.stats, plain.stats, "tracing must not perturb the run");
            assert_eq!(trace.instructions(), plain.stats.instructions);
            assert!(
                trace.len() as u64 <= plain.stats.instructions,
                "fetch runs must compress, not expand"
            );
        }
    }

    #[test]
    fn replay_reproduces_capture_config_exactly() {
        let config = LeonConfig::base();
        for program in [demo_program(), recursing_program()] {
            let (run, trace) = capture(&config, &program, 1_000_000).unwrap();
            let stats = replay(&trace, &config, 1_000_000).unwrap();
            assert_eq!(stats, run.stats);
        }
    }

    #[test]
    fn replay_retimes_cache_and_latency_perturbations_exactly() {
        let base = LeonConfig::base();
        let program = demo_program();
        let (_, trace) = capture(&base, &program, 1_000_000).unwrap();

        let mut perturbations = Vec::new();
        let mut c = base;
        c.dcache.way_kb = 1;
        perturbations.push(c);
        let mut c = base;
        c.dcache.ways = 2;
        c.dcache.replacement = ReplacementPolicy::Lru;
        perturbations.push(c);
        let mut c = base;
        c.icache.line_words = 4;
        perturbations.push(c);
        let mut c = base;
        c.icache.way_kb = 1;
        c.icache.ways = 2;
        c.icache.replacement = ReplacementPolicy::Lrr;
        perturbations.push(c);
        let mut c = base;
        c.iu.multiplier = Multiplier::M32x32;
        perturbations.push(c);
        let mut c = base;
        c.dcache_fast_read = true;
        c.dcache_fast_write = true;
        perturbations.push(c);
        let mut c = base;
        c.iu.load_delay = 2;
        c.iu.fast_decode = false;
        c.iu.fast_jump = false;
        c.iu.icc_hold = false;
        perturbations.push(c);

        for config in perturbations {
            let full = crate::simulate(&config, &program, 1_000_000).unwrap();
            let replayed = replay(&trace, &config, 1_000_000).unwrap();
            assert_eq!(replayed, full.stats, "replay must be bit-identical for {config:?}");
        }
    }

    #[test]
    fn replay_retimes_register_window_changes_exactly() {
        // the recursion depth (12) straddles every window count here, so the
        // trap pattern genuinely differs between configurations
        let base = LeonConfig::base();
        let program = recursing_program();
        let (_, trace) = capture(&base, &program, 1_000_000).unwrap();
        for windows in [2u8, 4, 8, 16, 32] {
            let mut config = base;
            config.iu.reg_windows = windows;
            let full = crate::simulate(&config, &program, 1_000_000).unwrap();
            let replayed = replay(&trace, &config, 1_000_000).unwrap();
            assert_eq!(
                replayed, full.stats,
                "replay must re-derive window traps for {windows} windows"
            );
            if windows == 2 {
                assert!(replayed.window_overflows > 0, "2 windows must trap on recursion");
            }
        }
    }

    #[test]
    fn replay_respects_the_cycle_budget() {
        let base = LeonConfig::base();
        let program = demo_program();
        let (run, trace) = capture(&base, &program, 1_000_000).unwrap();
        let limit = run.stats.cycles / 2;
        let full = crate::simulate(&base, &program, limit).unwrap_err();
        let replayed = replay(&trace, &base, limit).unwrap_err();
        assert_eq!(full, replayed);
        assert!(matches!(replayed, SimError::CycleLimitExceeded { .. }));
    }

    #[test]
    fn budget_boundary_is_identical_to_simulation() {
        // Regression test for the one semantic divergence the first trace
        // engine shipped with: a budget first exceeded by the *final*
        // instruction used to finish under full simulation but error under
        // replay.  Both must now treat the budget as a bound on the total.
        let base = LeonConfig::base();
        for program in [demo_program(), recursing_program()] {
            let (run, trace) = capture(&base, &program, 1_000_000).unwrap();
            let total = run.stats.cycles;

            // budget == total: both engines finish, bit-identically
            let full = crate::simulate(&base, &program, total).unwrap();
            let replayed = replay(&trace, &base, total).unwrap();
            assert_eq!(replayed, full.stats);

            // budget == total - 1 (exhausted on the final instruction):
            // both engines must fail with the same error
            let full = crate::simulate(&base, &program, total - 1).unwrap_err();
            let replayed = replay(&trace, &base, total - 1).unwrap_err();
            assert_eq!(full, SimError::CycleLimitExceeded { limit: total - 1 });
            assert_eq!(replayed, full);
        }
    }

    #[test]
    fn replay_batch_matches_elementwise_replay_on_a_mixed_batch() {
        let base = LeonConfig::base();
        for program in [demo_program(), recursing_program()] {
            let (_, trace) = capture(&base, &program, 1_000_000).unwrap();

            let mut configs = Vec::new();
            configs.push(base); // the captured configuration itself
            let mut c = base;
            c.dcache.way_kb = 1;
            configs.push(c);
            configs.push(c); // duplicate: same behavior class, same result
            let mut c = base;
            c.dcache.ways = 2;
            c.dcache.replacement = ReplacementPolicy::Lru;
            c.iu.reg_windows = 2;
            configs.push(c);
            let mut c = base;
            c.icache.way_kb = 1;
            c.icache.ways = 2;
            c.icache.replacement = ReplacementPolicy::Lrr;
            configs.push(c);
            let mut c = base;
            c.iu.multiplier = Multiplier::M32x32;
            c.dcache_fast_read = true;
            configs.push(c); // pure closed-form retime, no class at all
            let mut c = base;
            c.dcache.way_kb = 3; // structurally invalid
            configs.push(c);

            let batched = replay_batch(&trace, &configs, 1_000_000);
            let elementwise: Vec<_> =
                configs.iter().map(|c| replay(&trace, c, 1_000_000)).collect();
            assert_eq!(batched, elementwise, "batch must equal element-wise replay exactly");
            assert!(matches!(batched[6], Err(SimError::InvalidConfig(_))));
        }
    }

    #[test]
    fn replay_batch_enforces_the_cycle_budget_per_configuration() {
        let base = LeonConfig::base();
        let program = demo_program();
        let (run, trace) = capture(&base, &program, 1_000_000).unwrap();
        let mut slow = base;
        slow.iu.fast_decode = false;
        slow.iu.fast_jump = false;
        // budget exactly the base total: the base fits, the slowed config
        // must exceed it — with the same error replay produces
        let results = replay_batch(&trace, &[base, slow], run.stats.cycles);
        assert_eq!(results[0].as_ref().unwrap().cycles, run.stats.cycles);
        assert_eq!(
            results[1],
            Err(SimError::CycleLimitExceeded { limit: run.stats.cycles })
        );
        assert_eq!(results[1], replay(&trace, &slow, run.stats.cycles));
    }

    #[test]
    fn batch_plan_deduplicates_behavior_classes_and_walks_once_per_span() {
        let base = LeonConfig::base();
        let program = recursing_program();
        let (_, trace) = capture(&base, &program, 1_000_000).unwrap();

        let mut dcache_small = base;
        dcache_small.dcache.way_kb = 1;
        let mut windows_low = base;
        windows_low.iu.reg_windows = 2;
        let mut icache_small = base;
        icache_small.icache.way_kb = 1;
        let mut closed_form = base;
        closed_form.iu.multiplier = Multiplier::M32x32;
        let configs =
            [base, dcache_small, dcache_small, windows_low, icache_small, closed_form, base];

        let plan = ReplayBatch::new(&trace, &configs, 1_000_000);
        assert_eq!(plan.len(), 7);
        // duplicates and base-geometry configs never create classes
        assert_eq!(plan.mem_class_count(), 2, "dcache_small (deduped) + windows_low");
        assert_eq!(plan.fetch_class_count(), 1, "icache_small");
        assert_eq!(plan.class_count(), 3);

        // a span walk is exactly one counted pass over the stream
        let before = trace_walks_performed();
        let mem = plan.walk_mem_span(0..plan.mem_class_count());
        assert_eq!(trace_walks_performed() - before, 1);
        let fetch = plan.walk_fetch_span(0..plan.fetch_class_count());
        assert_eq!(trace_walks_performed() - before, 2);
        // empty spans are free
        assert!(plan.walk_mem_span(0..0).is_empty());
        assert_eq!(trace_walks_performed() - before, 2);

        // split spans produce the same per-class results as the fused pass
        let first = plan.walk_mem_span(0..1);
        let second = plan.walk_mem_span(1..2);
        assert_eq!(mem, [first, second].concat());

        let finished = plan.finish(&mem, &fetch);
        for (result, config) in finished.iter().zip(&configs) {
            assert_eq!(result.as_ref().unwrap(), &replay(&trace, config, 1_000_000).unwrap());
        }
    }

    #[test]
    fn traces_are_shared_across_measurement_workers() {
        // the campaign engine fans replays of one trace out over a worker
        // pool; the trace type must stay plain shareable data
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Trace>();
        assert_send_sync::<TraceOp>();
        assert_send_sync::<MemOp>();
    }

    #[test]
    fn compressed_runs_never_cross_a_16_byte_block() {
        let base = LeonConfig::base();
        let program = demo_program();
        let (_, trace) = capture(&base, &program, 1_000_000).unwrap();
        for op in &trace.ops {
            if op.flags == 0 {
                assert!(op.aux >= 1 && op.aux <= 4);
                let last_pc = op.pc + 4 * (op.aux - 1);
                assert_eq!(op.pc >> 4, last_pc >> 4, "run crosses a minimum-size line");
            }
        }
    }

    #[test]
    fn binary_codec_round_trips_exactly() {
        let mut config = LeonConfig::base();
        // a non-default capture configuration exercises every encoded field
        config.icache.ways = 2;
        config.icache.replacement = ReplacementPolicy::Lru;
        config.iu.multiplier = Multiplier::M32x32;
        config.dcache_fast_read = true;
        for program in [demo_program(), recursing_program()] {
            let (_, trace) = capture(&config, &program, 1_000_000).unwrap();
            let bytes = trace.to_bytes();
            let decoded = Trace::from_bytes(&bytes).unwrap();
            assert_eq!(decoded, trace, "decode(encode(t)) must equal t exactly");
            // and the decoded trace replays bit-identically to the original
            let base = LeonConfig::base();
            assert_eq!(
                replay(&decoded, &base, 1_000_000).unwrap(),
                replay(&trace, &base, 1_000_000).unwrap()
            );
        }
    }

    #[test]
    fn peek_header_reads_only_the_fixed_header() {
        let mut config = LeonConfig::base();
        config.icache.ways = 2;
        config.icache.replacement = ReplacementPolicy::Lru;
        let (run, trace) = capture(&config, &recursing_program(), 1_000_000).unwrap();
        let bytes = trace.to_bytes();

        let header = Trace::peek_header(&bytes).unwrap();
        assert_eq!(header.version, TRACE_FORMAT_VERSION);
        assert_eq!(header.captured, config);
        assert_eq!(header.base_icache, run.stats.icache);
        assert_eq!(header.base_dcache, run.stats.dcache);
        assert_eq!(header.base_overflows, run.stats.window_overflows);
        assert_eq!(header.records, trace.ops.len() as u64);

        // a record-stream bit flip passes the peek (no integrity claim) but
        // still fails the full decode
        let mut flipped = bytes.clone();
        let pos = flipped.len() - 20;
        flipped[pos] ^= 0x40;
        assert!(Trace::peek_header(&flipped).is_ok());
        assert!(Trace::from_bytes(&flipped).is_err());

        // header damage is caught by the peek itself
        assert!(Trace::peek_header(&bytes[..10]).is_err());
        let mut versioned = bytes.clone();
        versioned[4..8].copy_from_slice(&(TRACE_FORMAT_VERSION + 7).to_le_bytes());
        let err = Trace::peek_header(&versioned).unwrap_err();
        assert!(err.to_string().contains("version"), "got: {err}");
        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 10);
        assert!(Trace::peek_header(&truncated).is_err(), "record count must mismatch");
    }

    #[test]
    fn binary_codec_rejects_damage() {
        let (_, trace) = capture(&LeonConfig::base(), &demo_program(), 1_000_000).unwrap();
        let good = trace.to_bytes();
        assert!(Trace::from_bytes(&good).is_ok());

        // truncation (both mid-record and mid-header)
        assert!(Trace::from_bytes(&good[..good.len() - 1]).is_err());
        assert!(Trace::from_bytes(&good[..10]).is_err());
        assert!(Trace::from_bytes(&[]).is_err());

        // a single flipped bit anywhere must fail the checksum
        for pos in [0usize, 4, good.len() / 2, good.len() - 9] {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            assert!(Trace::from_bytes(&bad).is_err(), "bit flip at {pos} must be detected");
        }

        // a different format version must be rejected even with a valid
        // checksum over the altered body
        let mut versioned = good.clone();
        versioned[4..8].copy_from_slice(&(TRACE_FORMAT_VERSION + 1).to_le_bytes());
        let body_len = versioned.len() - 8;
        let checksum = fnv1a64(&versioned[..body_len]);
        versioned[body_len..].copy_from_slice(&checksum.to_le_bytes());
        let err = Trace::from_bytes(&versioned).unwrap_err();
        assert!(err.to_string().contains("version"), "got: {err}");

        // trailing garbage is rejected (record count no longer matches)
        let mut padded = good[..good.len() - 8].to_vec();
        padded.extend_from_slice(&[0u8; 10]);
        let checksum = fnv1a64(&padded);
        padded.extend_from_slice(&checksum.to_le_bytes());
        assert!(Trace::from_bytes(&padded).is_err());
    }

    #[test]
    fn summary_and_mem_stream_are_consistent() {
        let base = LeonConfig::base();
        let program = recursing_program();
        let (run, trace) = capture(&base, &program, 1_000_000).unwrap();
        let s = &trace.summary;
        assert_eq!(s.instructions, run.stats.instructions);
        assert_eq!(s.loads, run.stats.loads);
        assert_eq!(s.stores, run.stats.stores);
        assert_eq!(s.branches, run.stats.branches);
        assert_eq!(s.taken_branches, run.stats.taken_branches);
        assert_eq!(s.calls, run.stats.calls);
        let mem_loads = trace.mem.iter().filter(|m| matches!(m, MemOp::Load(_))).count() as u64;
        let saves = trace.mem.iter().filter(|m| matches!(m, MemOp::Save(_))).count() as u64;
        assert_eq!(mem_loads, s.loads);
        assert_eq!(saves, s.saves);
        assert!(s.saves > 0 && s.restores > 0, "recursion must rotate windows");
    }
}
