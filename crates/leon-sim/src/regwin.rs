//! SPARC-style register windows.
//!
//! The register file is modelled as a conceptually unbounded stack of
//! windows with the standard SPARC overlap (the *out* registers of a caller
//! are the *in* registers of its callee).  Architectural values are therefore
//! always preserved regardless of the configured number of windows; the
//! *number of hardware windows* only determines when window overflow and
//! underflow traps occur, which the CPU turns into spill/fill memory traffic
//! and trap cycles — exactly the effect the `register windows` parameter of
//! the paper has on runtime.

use leon_isa::Reg;

/// Result of a `save` or `restore` with respect to window traps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowEvent {
    /// The window rotation completed without a trap.
    None,
    /// A window had to be spilled to memory (16 registers stored).
    Overflow,
    /// A window had to be filled from memory (16 registers loaded).
    Underflow,
}

/// The windowed integer register file.
#[derive(Clone, Debug)]
pub struct RegisterWindows {
    nwindows: u32,
    /// Current call depth (number of `save`s minus `restore`s).
    depth: usize,
    /// Number of windows currently resident in the hardware register file.
    resident: u32,
    /// 8 globals followed by the windowed registers of all depths.
    regs: Vec<u32>,
    /// Count of overflow traps taken.
    pub overflows: u64,
    /// Count of underflow traps taken.
    pub underflows: u64,
}

impl RegisterWindows {
    /// Create a register file with `nwindows` hardware windows (2–32).
    pub fn new(nwindows: u32) -> RegisterWindows {
        assert!((2..=32).contains(&nwindows), "nwindows must be 2..=32");
        RegisterWindows {
            nwindows,
            depth: 0,
            resident: 1,
            regs: vec![0; 8 + 16 + 24],
            overflows: 0,
            underflows: 0,
        }
    }

    /// Current call depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    #[inline]
    fn phys(&self, r: Reg) -> usize {
        let idx = r.index();
        // Window-relative offsets are laid out so that the *out* registers of
        // call depth `d` alias the *in* registers of depth `d + 1`:
        //   ins    -> offset 0..8
        //   locals -> offset 8..16
        //   outs   -> offset 16..24  (== ins of the next depth)
        let offset = match idx {
            0..=7 => return idx,
            8..=15 => idx + 8,   // outs
            16..=23 => idx - 8,  // locals
            _ => idx - 24,       // ins
        };
        8 + self.depth * 16 + offset
    }

    fn ensure_capacity(&mut self) {
        let needed = 8 + self.depth * 16 + 24;
        if self.regs.len() < needed {
            self.regs.resize(needed, 0);
        }
    }

    /// Read an architectural register in the current window.
    #[inline]
    pub fn read(&self, r: Reg) -> u32 {
        if r.is_zero() {
            0
        } else {
            self.regs[self.phys(r)]
        }
    }

    /// Write an architectural register in the current window (writes to
    /// `%g0` are discarded).
    #[inline]
    pub fn write(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            let idx = self.phys(r);
            self.regs[idx] = value;
        }
    }

    /// Rotate to a new window (`save`).  Returns [`WindowEvent::Overflow`]
    /// when the hardware register file was full and a window had to be
    /// spilled.
    pub fn save(&mut self) -> WindowEvent {
        self.depth += 1;
        self.ensure_capacity();
        // One window is architecturally reserved (the SPARC WIM invalid
        // window), so at most nwindows-1 windows hold program state.
        if self.resident >= self.nwindows - 1 {
            self.overflows += 1;
            WindowEvent::Overflow
        } else {
            self.resident += 1;
            WindowEvent::None
        }
    }

    /// Rotate back to the previous window (`restore`).  Returns
    /// [`WindowEvent::Underflow`] when the target window was not resident and
    /// had to be filled from memory, or `Err(())` when there is no window to
    /// restore to (restore without save).
    pub fn restore(&mut self) -> Result<WindowEvent, ()> {
        if self.depth == 0 {
            return Err(());
        }
        self.depth -= 1;
        if self.resident <= 1 {
            self.underflows += 1;
            Ok(WindowEvent::Underflow)
        } else {
            self.resident -= 1;
            Ok(WindowEvent::None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g0_reads_zero_and_ignores_writes() {
        let mut w = RegisterWindows::new(8);
        w.write(Reg::G0, 123);
        assert_eq!(w.read(Reg::G0), 0);
    }

    #[test]
    fn globals_shared_across_windows() {
        let mut w = RegisterWindows::new(8);
        w.write(Reg::G3, 77);
        w.save();
        assert_eq!(w.read(Reg::G3), 77);
        w.write(Reg::G3, 88);
        w.restore().unwrap();
        assert_eq!(w.read(Reg::G3), 88);
    }

    #[test]
    fn outs_become_ins_after_save() {
        let mut w = RegisterWindows::new(8);
        w.write(Reg::O0, 41);
        w.write(Reg::O7, 99);
        w.save();
        assert_eq!(w.read(Reg::I0), 41);
        assert_eq!(w.read(Reg::I7), 99);
        // callee's locals and outs are fresh
        assert_eq!(w.read(Reg::L0), 0);
        assert_eq!(w.read(Reg::O0), 0);
        // return value convention: callee writes %i0, caller sees %o0
        w.write(Reg::I0, 1234);
        w.restore().unwrap();
        assert_eq!(w.read(Reg::O0), 1234);
    }

    #[test]
    fn locals_are_private_per_window() {
        let mut w = RegisterWindows::new(8);
        w.write(Reg::L5, 5);
        w.save();
        w.write(Reg::L5, 6);
        w.restore().unwrap();
        assert_eq!(w.read(Reg::L5), 5);
    }

    #[test]
    fn overflow_after_nwindows_minus_one_saves() {
        let mut w = RegisterWindows::new(8);
        let mut overflow_at = None;
        for i in 1..=10 {
            if w.save() == WindowEvent::Overflow {
                overflow_at = Some(i);
                break;
            }
        }
        assert_eq!(overflow_at, Some(7), "8 windows => overflow on the 7th save");
    }

    #[test]
    fn more_windows_means_fewer_overflows() {
        let run = |nwin: u32| {
            let mut w = RegisterWindows::new(nwin);
            let mut overflows = 0;
            for _ in 0..20 {
                if w.save() == WindowEvent::Overflow {
                    overflows += 1;
                }
            }
            overflows
        };
        assert!(run(8) > run(16));
        assert!(run(16) > run(31));
    }

    #[test]
    fn underflow_only_after_overflow() {
        let mut w = RegisterWindows::new(4);
        // depth 1..=2 resident, 3rd save overflows (4 windows => 3 usable)
        assert_eq!(w.save(), WindowEvent::None);
        assert_eq!(w.save(), WindowEvent::None);
        assert_eq!(w.save(), WindowEvent::Overflow);
        // coming back: the first two restores are resident, the last
        // needs a fill
        assert_eq!(w.restore().unwrap(), WindowEvent::None);
        assert_eq!(w.restore().unwrap(), WindowEvent::None);
        assert_eq!(w.restore().unwrap(), WindowEvent::Underflow);
        assert_eq!(w.depth(), 0);
    }

    #[test]
    fn restore_without_save_is_error() {
        let mut w = RegisterWindows::new(8);
        assert!(w.restore().is_err());
    }

    #[test]
    fn deep_recursion_preserves_values() {
        let mut w = RegisterWindows::new(4);
        for d in 0..50u32 {
            w.write(Reg::L0, d);
            w.save();
        }
        for d in (0..50u32).rev() {
            w.restore().unwrap();
            assert_eq!(w.read(Reg::L0), d);
        }
    }
}
