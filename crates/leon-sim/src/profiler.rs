//! Non-intrusive profiler.
//!
//! The Liquid Architecture platform used in the paper provides a
//! hardware-based, cycle-accurate, non-intrusive profiler ("statistics
//! module") that counts the clock cycles an application takes when executed
//! directly on the soft core.  [`Stats`] is the simulator's equivalent: it is
//! filled in by the CPU as a side effect of execution and never perturbs the
//! simulated program.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::cache::CacheStats;

/// Execution statistics collected by the simulator.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Total clock cycles, including all stalls and penalties.
    pub cycles: u64,
    /// Dynamically executed instructions.
    pub instructions: u64,
    /// Instruction-cache statistics (fetches).
    pub icache: CacheStats,
    /// Data-cache statistics (loads and stores).
    pub dcache: CacheStats,
    /// Executed loads.
    pub loads: u64,
    /// Executed stores.
    pub stores: u64,
    /// Executed conditional branches.
    pub branches: u64,
    /// Conditional branches that were taken.
    pub taken_branches: u64,
    /// Executed calls and indirect jumps.
    pub calls: u64,
    /// Executed hardware multiplies.
    pub mul_ops: u64,
    /// Executed hardware divides.
    pub div_ops: u64,
    /// Register-window overflow traps.
    pub window_overflows: u64,
    /// Register-window underflow traps.
    pub window_underflows: u64,
    /// Stall cycles charged to the ICC-hold interlock.
    pub icc_hold_stalls: u64,
    /// Stall cycles charged to load-use interlocks.
    pub load_use_stalls: u64,
}

impl Stats {
    /// Cycles per instruction (0 when nothing executed).
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }
}

/// The outcome of a completed simulation run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Profiler counters.
    pub stats: Stats,
    /// Exit code passed to the `halt` instruction.
    pub exit_code: u32,
    /// Values reported by the guest per channel (in program order).
    pub reports: BTreeMap<u16, Vec<u32>>,
    /// Characters emitted by the guest's `putchar`.
    pub console: String,
    /// Runtime in seconds at the configured nominal clock.
    pub seconds: f64,
}

impl RunResult {
    /// Last value reported on `channel`, if any.
    pub fn report(&self, channel: u16) -> Option<u32> {
        self.reports.get(&channel).and_then(|v| v.last()).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_handles_zero() {
        let s = Stats::default();
        assert_eq!(s.cpi(), 0.0);
        let s = Stats { cycles: 30, instructions: 10, ..Stats::default() };
        assert!((s.cpi() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn report_returns_latest() {
        let mut r = RunResult::default();
        r.reports.insert(1, vec![10, 20, 30]);
        assert_eq!(r.report(1), Some(30));
        assert_eq!(r.report(2), None);
    }
}
