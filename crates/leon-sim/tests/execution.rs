//! End-to-end execution tests: instruction semantics, timing sensitivity to
//! the microarchitecture parameters, and determinism.

use leon_isa::{Asm, Program, Reg};
use leon_sim::{simulate, Divider, LeonConfig, Multiplier, ReplacementPolicy, SimError};

const MAX: u64 = 50_000_000;

fn run(config: &LeonConfig, program: &Program) -> leon_sim::RunResult {
    simulate(config, program, MAX).expect("simulation should succeed")
}

fn base() -> LeonConfig {
    LeonConfig::base()
}

/// A program that reports a single value on channel 1 and halts.
fn report_prog(build: impl FnOnce(&mut Asm)) -> Program {
    let mut a = Asm::new("test");
    build(&mut a);
    a.report(1, Reg::O0);
    a.halt();
    a.assemble().unwrap()
}

#[test]
fn arithmetic_and_logic_semantics() {
    let p = report_prog(|a| {
        a.set(Reg::L0, 1000);
        a.set(Reg::L1, 58);
        a.add(Reg::L2, Reg::L0, Reg::L1); // 1058
        a.sub(Reg::L2, Reg::L2, 58); // 1000
        a.sll(Reg::L2, Reg::L2, 3); // 8000
        a.srl(Reg::L2, Reg::L2, 1); // 4000
        a.xor(Reg::L2, Reg::L2, 0xff); // 4000 ^ 255 = 4175
        a.and_(Reg::L2, Reg::L2, 0xfff); // 4175 & 4095 = 79... compute below
        a.mov(Reg::O0, Reg::L2);
    });
    let expected = ((((1000u32 + 58 - 58) << 3) >> 1) ^ 0xff) & 0xfff;
    assert_eq!(run(&base(), &p).report(1), Some(expected));
}

#[test]
fn signed_arithmetic_shift_and_negative_numbers() {
    let p = report_prog(|a| {
        a.set(Reg::L0, (-64i32) as u32);
        a.sra(Reg::O0, Reg::L0, 4); // -4
    });
    assert_eq!(run(&base(), &p).report(1), Some((-4i32) as u32));
}

#[test]
fn multiply_and_divide_semantics() {
    let p = report_prog(|a| {
        a.set(Reg::L0, 1234);
        a.set(Reg::L1, 567);
        a.smul(Reg::L2, Reg::L0, Reg::L1);
        a.udiv(Reg::L3, Reg::L2, 89);
        a.mov(Reg::O0, Reg::L3);
    });
    assert_eq!(run(&base(), &p).report(1), Some(1234 * 567 / 89));
}

#[test]
fn division_by_zero_is_an_error() {
    let mut a = Asm::new("divzero");
    a.clr(Reg::L0);
    a.udiv(Reg::L1, Reg::L0, Reg::L0);
    a.halt();
    let p = a.assemble().unwrap();
    let err = simulate(&base(), &p, MAX).unwrap_err();
    assert!(matches!(err, SimError::DivisionByZero { .. }));
}

#[test]
fn loads_and_stores_all_widths() {
    let p = report_prog(|a| {
        a.data_label("buf");
        a.data_words(&[0, 0, 0, 0]);
        a.set_data_addr(Reg::L0, "buf");
        a.set(Reg::L1, 0x8765_4321);
        a.st(Reg::L1, Reg::L0, 0);
        a.lduh(Reg::L2, Reg::L0, 0); // 0x4321
        a.ldub(Reg::L3, Reg::L0, 3); // 0x87
        a.ldsb(Reg::L4, Reg::L0, 3); // sign-extended 0x87 = -121
        a.sth(Reg::L2, Reg::L0, 4);
        a.stb(Reg::L3, Reg::L0, 8);
        a.ld(Reg::L5, Reg::L0, 4); // 0x4321
        a.ld(Reg::L6, Reg::L0, 8); // 0x87
        // o0 = l2 + l3 + (l4 & 0xffff) + l5 + l6
        a.add(Reg::O0, Reg::L2, Reg::L3);
        a.set(Reg::L7, 0xffff);
        a.and_(Reg::L4, Reg::L4, Reg::L7);
        a.add(Reg::O0, Reg::O0, Reg::L4);
        a.add(Reg::O0, Reg::O0, Reg::L5);
        a.add(Reg::O0, Reg::O0, Reg::L6);
    });
    let l2 = 0x4321u32;
    let l3 = 0x87u32;
    let l4 = (-121i32 as u32) & 0xffff;
    let expected = l2 + l3 + l4 + 0x4321 + 0x87;
    assert_eq!(run(&base(), &p).report(1), Some(expected));
}

#[test]
fn conditional_branches_signed_and_unsigned() {
    // count how many of a few comparisons are "true"
    let p = report_prog(|a| {
        a.clr(Reg::O0);
        // signed: -5 < 3
        a.set(Reg::L0, (-5i32) as u32);
        a.cmp(Reg::L0, 3);
        a.bl("t1");
        a.ba("n1");
        a.label("t1");
        a.inc(Reg::O0, 1);
        a.label("n1");
        // unsigned: 0xfffffffb > 3
        a.cmp(Reg::L0, 3);
        a.bgu("t2");
        a.ba("n2");
        a.label("t2");
        a.inc(Reg::O0, 1);
        a.label("n2");
        // equality
        a.set(Reg::L1, 42);
        a.cmp(Reg::L1, 42);
        a.be("t3");
        a.ba("n3");
        a.label("t3");
        a.inc(Reg::O0, 1);
        a.label("n3");
        // not taken: 1 > 2 signed
        a.set(Reg::L2, 1);
        a.cmp(Reg::L2, 2);
        a.bg("t4");
        a.ba("n4");
        a.label("t4");
        a.inc(Reg::O0, 100);
        a.label("n4");
    });
    assert_eq!(run(&base(), &p).report(1), Some(3));
}

#[test]
fn call_and_leaf_return() {
    let p = {
        let mut a = Asm::new("call");
        a.set(Reg::O0, 5);
        a.call("double");
        a.report(1, Reg::O0);
        a.halt();
        a.label("double");
        a.add(Reg::O0, Reg::O0, Reg::O0);
        a.retl();
        a.assemble().unwrap()
    };
    assert_eq!(run(&base(), &p).report(1), Some(10));
}

#[test]
fn windowed_call_convention() {
    // A function that uses save/restore; argument in %o0, result in %o0.
    let p = {
        let mut a = Asm::new("windows");
        a.set(Reg::O0, 7);
        a.call("square_plus_one");
        a.report(1, Reg::O0);
        a.halt();
        a.label("square_plus_one");
        a.save_frame(96);
        a.smul(Reg::L0, Reg::I0, Reg::I0);
        a.add(Reg::I0, Reg::L0, 1);
        a.ret_restore();
        a.assemble().unwrap()
    };
    assert_eq!(run(&base(), &p).report(1), Some(50));
}

#[test]
fn recursion_with_window_traps_is_correct() {
    // fib(n) computed recursively — exceeds 8 windows for n big enough and
    // still returns the right answer with any window count.
    let build = || {
        let mut a = Asm::new("fib");
        a.set(Reg::O0, 12);
        a.call("fib");
        a.report(1, Reg::O0);
        a.halt();
        a.label("fib");
        a.save_frame(96);
        a.cmp(Reg::I0, 2);
        a.bl("base_case");
        a.sub(Reg::O0, Reg::I0, 1);
        a.call("fib");
        a.mov(Reg::L0, Reg::O0);
        a.sub(Reg::O0, Reg::I0, 2);
        a.call("fib");
        a.add(Reg::I0, Reg::L0, Reg::O0);
        a.ret_restore();
        a.label("base_case");
        a.mov(Reg::I0, Reg::I0);
        a.ret_restore();
        a.assemble().unwrap()
    };
    let p = build();
    let mut small = base();
    small.iu.reg_windows = 4;
    let mut large = base();
    large.iu.reg_windows = 32;
    let r_small = run(&small, &p);
    let r_large = run(&large, &p);
    // fib(12) = 144
    assert_eq!(r_small.report(1), Some(144));
    assert_eq!(r_large.report(1), Some(144));
    // fewer windows => more traps => more cycles
    assert!(r_small.stats.window_overflows > r_large.stats.window_overflows);
    assert!(r_small.stats.cycles > r_large.stats.cycles);
}

/// A memory-scanning kernel whose working set is `kb` kilobytes, touched
/// `passes` times.
fn scan_workload(kb: u32, passes: u32) -> Program {
    let mut a = Asm::new("scan");
    a.data_label("buf");
    a.data_zeros((kb * 1024) as usize);
    a.clr(Reg::O0);
    a.set(Reg::L5, passes);
    a.label("pass");
    a.set_data_addr(Reg::L0, "buf");
    a.set(Reg::L1, kb * 1024);
    a.label("loop");
    a.ld(Reg::L2, Reg::L0, 0);
    a.add(Reg::O0, Reg::O0, Reg::L2);
    a.inc(Reg::L0, 4);
    a.subcc(Reg::L1, Reg::L1, 4);
    a.bne("loop");
    a.subcc(Reg::L5, Reg::L5, 1);
    a.bne("pass");
    a.report(1, Reg::O0);
    a.halt();
    a.assemble().unwrap()
}

#[test]
fn larger_dcache_reduces_cycles_for_large_working_set() {
    let p = scan_workload(16, 4);
    let mut small = base();
    small.dcache.way_kb = 4;
    let mut large = base();
    large.dcache.way_kb = 32;
    let r_small = run(&small, &p);
    let r_large = run(&large, &p);
    assert!(r_large.stats.dcache.read_misses < r_small.stats.dcache.read_misses);
    assert!(r_large.stats.cycles < r_small.stats.cycles);
    // same instructions, same answer
    assert_eq!(r_small.stats.instructions, r_large.stats.instructions);
    assert_eq!(r_small.report(1), r_large.report(1));
}

#[test]
fn dcache_has_no_effect_on_register_only_code() {
    let p = report_prog(|a| {
        a.set(Reg::L0, 20_000);
        a.clr(Reg::O0);
        a.label("loop");
        a.add(Reg::O0, Reg::O0, Reg::L0);
        a.subcc(Reg::L0, Reg::L0, 1);
        a.bne("loop");
    });
    let mut small = base();
    small.dcache.way_kb = 1;
    let mut large = base();
    large.dcache.way_kb = 32;
    assert_eq!(run(&small, &p).stats.cycles, run(&large, &p).stats.cycles);
}

#[test]
fn fast_read_and_load_delay_affect_load_heavy_code() {
    let p = scan_workload(2, 4);
    let mut fast = base();
    fast.dcache_fast_read = true;
    let mut slow = base();
    slow.iu.load_delay = 2;
    let r_base = run(&base(), &p);
    let r_fast = run(&fast, &p);
    let r_slow = run(&slow, &p);
    assert!(r_fast.stats.cycles < r_base.stats.cycles, "fast read should help");
    assert!(r_slow.stats.cycles > r_base.stats.cycles, "extra load delay should hurt");
}

#[test]
fn icc_hold_interlock_costs_cycles_on_compare_branch_sequences() {
    let p = report_prog(|a| {
        a.set(Reg::L0, 50_000);
        a.label("loop");
        a.subcc(Reg::L0, Reg::L0, 1);
        a.bne("loop");
        a.clr(Reg::O0);
    });
    let with_hold = base();
    let mut without_hold = base();
    without_hold.iu.icc_hold = false;
    let r_hold = run(&with_hold, &p);
    let r_fwd = run(&without_hold, &p);
    assert!(r_hold.stats.icc_hold_stalls > 0);
    assert_eq!(r_fwd.stats.icc_hold_stalls, 0);
    assert!(r_hold.stats.cycles > r_fwd.stats.cycles);
}

#[test]
fn multiplier_options_order_runtime_correctly() {
    let p = report_prog(|a| {
        a.set(Reg::L0, 10_000);
        a.set(Reg::L1, 3);
        a.clr(Reg::O0);
        a.label("loop");
        a.smul(Reg::L2, Reg::L0, Reg::L1);
        a.add(Reg::O0, Reg::O0, Reg::L2);
        a.subcc(Reg::L0, Reg::L0, 1);
        a.bne("loop");
    });
    let cycles_for = |m: Multiplier| {
        let mut c = base();
        c.iu.multiplier = m;
        run(&c, &p).stats.cycles
    };
    let none = cycles_for(Multiplier::None);
    let iter = cycles_for(Multiplier::Iterative);
    let m16 = cycles_for(Multiplier::M16x16);
    let m32 = cycles_for(Multiplier::M32x32);
    assert!(none > iter);
    assert!(iter > m16);
    assert!(m16 > m32);
}

#[test]
fn divider_option_matters_only_for_division_code() {
    let div_prog = report_prog(|a| {
        a.set(Reg::L0, 5_000);
        a.set(Reg::O0, 1_000_000);
        a.label("loop");
        a.udiv(Reg::O0, Reg::O0, 3);
        a.add(Reg::O0, Reg::O0, 100);
        a.subcc(Reg::L0, Reg::L0, 1);
        a.bne("loop");
    });
    let no_div_prog = report_prog(|a| {
        a.set(Reg::L0, 5_000);
        a.clr(Reg::O0);
        a.label("loop");
        a.add(Reg::O0, Reg::O0, 7);
        a.subcc(Reg::L0, Reg::L0, 1);
        a.bne("loop");
    });
    let mut no_hw_div = base();
    no_hw_div.iu.divider = Divider::None;
    assert!(run(&no_hw_div, &div_prog).stats.cycles > run(&base(), &div_prog).stats.cycles);
    assert_eq!(
        run(&no_hw_div, &no_div_prog).stats.cycles,
        run(&base(), &no_div_prog).stats.cycles
    );
}

#[test]
fn replacement_policy_changes_are_valid_and_comparable() {
    let p = scan_workload(8, 3);
    let mut lru = base();
    lru.dcache.ways = 2;
    lru.dcache.way_kb = 2;
    lru.dcache.replacement = ReplacementPolicy::Lru;
    let mut lrr = lru;
    lrr.dcache.replacement = ReplacementPolicy::Lrr;
    let mut rnd = lru;
    rnd.dcache.replacement = ReplacementPolicy::Random;
    let r_lru = run(&lru, &p);
    let r_lrr = run(&lrr, &p);
    let r_rnd = run(&rnd, &p);
    // all policies produce the same result and instruction count
    assert_eq!(r_lru.report(1), r_lrr.report(1));
    assert_eq!(r_lru.report(1), r_rnd.report(1));
    assert_eq!(r_lru.stats.instructions, r_rnd.stats.instructions);
}

#[test]
fn simulation_is_deterministic() {
    let p = scan_workload(4, 2);
    let a = run(&base(), &p);
    let b = run(&base(), &p);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.reports, b.reports);
}

#[test]
fn seconds_reporting_uses_nominal_clock() {
    let p = scan_workload(1, 1);
    let r = run(&base(), &p);
    let expected = r.stats.cycles as f64 / 25e6;
    assert!((r.seconds - expected).abs() < 1e-12);
}

#[test]
fn cycle_limit_is_enforced() {
    let mut a = Asm::new("forever");
    a.label("loop");
    a.ba("loop");
    a.halt();
    let p = a.assemble().unwrap();
    let err = simulate(&base(), &p, 10_000).unwrap_err();
    assert!(matches!(err, SimError::CycleLimitExceeded { .. }));
}

#[test]
fn invalid_config_is_rejected_before_running() {
    let p = scan_workload(1, 1);
    let mut c = base();
    c.dcache.way_kb = 5;
    let err = simulate(&c, &p, MAX).unwrap_err();
    assert!(matches!(err, SimError::InvalidConfig(_)));
}

#[test]
fn cpi_is_reasonable_for_simple_code() {
    let p = report_prog(|a| {
        a.set(Reg::L0, 10_000);
        a.label("loop");
        a.subcc(Reg::L0, Reg::L0, 1);
        a.bne("loop");
        a.clr(Reg::O0);
    });
    let r = run(&base(), &p);
    let cpi = r.stats.cpi();
    assert!(cpi > 1.0 && cpi < 5.0, "cpi {cpi} out of expected range");
}
