//! Deterministic input generators.
//!
//! All benchmark inputs are generated from seeded PRNGs so that every run —
//! on every candidate configuration — processes exactly the same data, as the
//! paper's fixed benchmark inputs do.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generate a DNA sequence of `len` bases, each encoded as one byte in
/// `0..4` (A, C, G, T).
pub fn dna_sequence(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(0u8..4)).collect()
}

/// Plant exact copies of `query` fragments into `database` at deterministic
/// positions so that a seed-and-extend search has real alignments to find.
pub fn plant_matches(database: &mut [u8], query: &[u8], copies: usize, seed: u64) -> Vec<usize> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let mut positions = Vec::with_capacity(copies);
    if database.len() <= query.len() {
        return positions;
    }
    for _ in 0..copies {
        // Re-draw on overlap so a later plant cannot clobber an earlier one;
        // bounded attempts keep this total even for crowded databases.
        let mut pos = rng.gen_range(0..database.len() - query.len());
        for _ in 0..64 {
            let overlaps = positions
                .iter()
                .any(|&p: &usize| pos < p + query.len() && p < pos + query.len());
            if !overlaps {
                break;
            }
            pos = rng.gen_range(0..database.len() - query.len());
        }
        database[pos..pos + query.len()].copy_from_slice(query);
        positions.push(pos);
    }
    positions
}

/// A synthetic packet descriptor used by the network workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Flow (queue) the packet belongs to.
    pub flow: u32,
    /// Total length in bytes (header + payload).
    pub length: u32,
}

/// Generate a packet trace of `count` packets over `flows` flows with
/// lengths in `64..=1500` (an internet-mix-like distribution: mostly small
/// and large packets).
pub fn packet_trace(seed: u64, count: usize, flows: u32) -> Vec<Packet> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5bd1_e995);
    (0..count)
        .map(|_| {
            let length = match rng.gen_range(0u32..10) {
                0..=4 => rng.gen_range(64u32..=128),      // small (ACK-sized)
                5..=6 => rng.gen_range(129u32..=512),     // medium
                _ => rng.gen_range(513u32..=1500),        // large / MTU-sized
            };
            Packet { flow: rng.gen_range(0..flows), length: length & !3 }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna_is_deterministic_and_in_range() {
        let a = dna_sequence(42, 1000);
        let b = dna_sequence(42, 1000);
        assert_eq!(a, b);
        assert!(a.iter().all(|&b| b < 4));
        let c = dna_sequence(43, 1000);
        assert_ne!(a, c);
    }

    #[test]
    fn planted_matches_are_present() {
        let mut db = dna_sequence(1, 4096);
        let query = dna_sequence(2, 32);
        let positions = plant_matches(&mut db, &query, 5, 3);
        assert_eq!(positions.len(), 5);
        for &p in &positions {
            assert_eq!(&db[p..p + query.len()], &query[..]);
        }
    }

    #[test]
    fn packet_trace_is_deterministic_and_word_aligned() {
        let a = packet_trace(7, 500, 8);
        let b = packet_trace(7, 500, 8);
        assert_eq!(a, b);
        assert!(a.iter().all(|p| p.length % 4 == 0));
        assert!(a.iter().all(|p| (64..=1500).contains(&p.length)));
        assert!(a.iter().all(|p| p.flow < 8));
        // both small and large packets occur
        assert!(a.iter().any(|p| p.length <= 128));
        assert!(a.iter().any(|p| p.length >= 512));
    }
}
