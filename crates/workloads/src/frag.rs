//! Benchmark III — CommBench FRAG.
//!
//! "Frag is an IP packet fragmentation application.  IP packets are split
//! into multiple fragments for which some header fields have to be adjusted
//! and a header checksum computed, before being forwarded.  Frag is
//! computation intensive."  (paper, Section 2.5)
//!
//! The guest program walks a packet trace once; every packet whose payload
//! exceeds the fragment size is split, and for every emitted fragment the
//! 20-byte IP header is copied into an output buffer, the length and
//! fragment-offset fields are patched, and the 16-bit one's-complement IP
//! header checksum is computed over the ten header halfwords.  Because the
//! trace is traversed only once the workload has little data-cache
//! sensitivity (matching Figure 4 of the paper), while the per-fragment
//! header checksum keeps it computation bound.

use leon_isa::{Asm, Program, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::inputs::packet_trace;
use crate::workload::{Scale, Workload, CHAN_CHECKSUM, CHAN_METRIC};

/// IP header size in bytes (no options).
const HEADER_BYTES: u32 = 20;
/// Maximum payload carried by one fragment, in bytes (multiple of 8 as IP
/// requires).
const FRAG_PAYLOAD: u32 = 248;

/// The CommBench FRAG benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frag {
    /// Number of packets in the input trace.
    pub packets: u32,
    /// RNG seed for the input generator.
    pub seed: u64,
}

impl Frag {
    /// Construct with an explicit trace length.
    pub fn new(packets: u32, seed: u64) -> Frag {
        assert!(packets > 0);
        Frag { packets, seed }
    }

    /// Construct for a problem-size preset.
    pub fn scaled(scale: Scale) -> Frag {
        match scale {
            Scale::Tiny => Frag::new(200, 37),
            Scale::Small => Frag::new(3_500, 37),
            Scale::Medium => Frag::new(9_000, 37),
            Scale::Large => Frag::new(20_000, 37),
        }
    }

    /// The packet trace: 6 words per packet (total length + 5 header words).
    fn trace(&self) -> Vec<u32> {
        let lengths = packet_trace(self.seed, self.packets as usize, 64);
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x4ead_e4b1);
        let mut words = Vec::with_capacity(self.packets as usize * 6);
        for p in &lengths {
            // ensure length covers at least the header
            words.push(p.length.max(HEADER_BYTES + 8));
            for _ in 0..5 {
                words.push(rng.gen());
            }
        }
        words
    }

    /// One's-complement IP checksum over ten halfwords.
    fn ip_checksum(words: &[u32; 5]) -> u32 {
        let mut sum: u32 = 0;
        for w in words {
            sum = sum.wrapping_add(w & 0xffff).wrapping_add(w >> 16);
        }
        sum = (sum & 0xffff) + (sum >> 16);
        sum = (sum & 0xffff) + (sum >> 16);
        !sum & 0xffff
    }

    /// Host-side reference implementation.
    fn reference(&self) -> (u32, u32) {
        let trace = self.trace();
        let mut acc: u32 = 0;
        let mut frags: u32 = 0;
        for p in 0..self.packets as usize {
            let rec = &trace[p * 6..p * 6 + 6];
            let total = rec[0];
            let header = [rec[1], rec[2], rec[3], rec[4], rec[5]];
            let payload = total - HEADER_BYTES;
            let mut remaining = payload;
            let mut offset: u32 = 0;
            loop {
                let this = remaining.min(FRAG_PAYLOAD);
                let mut hw = header;
                hw[0] = this + HEADER_BYTES;
                hw[1] = offset;
                let cks = Self::ip_checksum(&hw);
                acc = acc.wrapping_mul(31).wrapping_add(cks);
                frags = frags.wrapping_add(1);
                remaining -= this;
                offset = offset.wrapping_add(this);
                if remaining == 0 {
                    break;
                }
            }
        }
        (acc, frags)
    }
}

impl Workload for Frag {
    fn name(&self) -> &str {
        "FRAG"
    }

    fn description(&self) -> &str {
        "IP packet fragmentation with per-fragment header rewrite and ones-complement checksum; computation intensive"
    }

    fn build(&self) -> Program {
        let trace = self.trace();
        let mut a = Asm::new("frag");
        a.data_label("trace");
        a.data_words(&trace);
        a.data_label("outbuf");
        a.data_zeros(64);

        // g1 = trace, g2 = outbuf, g3 = packet count, g4 = 0xffff
        a.set_data_addr(Reg::G1, "trace");
        a.set_data_addr(Reg::G2, "outbuf");
        a.set(Reg::G3, self.packets);
        a.set(Reg::G4, 0xffff);
        // o0 = checksum accumulator, o1 = fragments, l0 = packet index
        a.clr(Reg::O0);
        a.clr(Reg::O1);
        a.clr(Reg::L0);

        a.label("packet_loop");
        // l1 = &trace[packet * 6 words]
        a.smul(Reg::L1, Reg::L0, 24);
        a.add(Reg::L1, Reg::L1, Reg::G1);
        a.ld(Reg::L2, Reg::L1, 0); // total length
        a.sub(Reg::L2, Reg::L2, HEADER_BYTES as i32); // remaining payload
        a.clr(Reg::L3); // fragment offset

        a.label("frag_loop");
        // l4 = min(remaining, FRAG_PAYLOAD)
        a.mov(Reg::L4, Reg::L2);
        a.cmp(Reg::L4, FRAG_PAYLOAD as i32);
        a.bleu("size_ok");
        a.set(Reg::L4, FRAG_PAYLOAD);
        a.label("size_ok");
        // copy the 5 header words into the output buffer
        for w in 0..5i32 {
            a.ld(Reg::L6, Reg::L1, 4 + w * 4);
            a.st(Reg::L6, Reg::G2, w * 4);
        }
        // patch length and fragment-offset fields
        a.add(Reg::L6, Reg::L4, HEADER_BYTES as i32);
        a.st(Reg::L6, Reg::G2, 0);
        a.st(Reg::L3, Reg::G2, 4);
        // IP checksum over the ten header halfwords
        a.clr(Reg::L5); // sum
        a.clr(Reg::L7); // halfword index
        a.label("cks_loop");
        a.sll(Reg::O3, Reg::L7, 1);
        a.add(Reg::O3, Reg::O3, Reg::G2);
        a.lduh(Reg::O4, Reg::O3, 0);
        a.add(Reg::L5, Reg::L5, Reg::O4);
        a.add(Reg::L7, Reg::L7, 1);
        a.cmp(Reg::L7, 10);
        a.bl("cks_loop");
        // fold carries twice and complement
        a.srl(Reg::O3, Reg::L5, 16);
        a.and_(Reg::L5, Reg::L5, Reg::G4);
        a.add(Reg::L5, Reg::L5, Reg::O3);
        a.srl(Reg::O3, Reg::L5, 16);
        a.and_(Reg::L5, Reg::L5, Reg::G4);
        a.add(Reg::L5, Reg::L5, Reg::O3);
        a.xnor(Reg::L5, Reg::L5, Reg::G0);
        a.and_(Reg::L5, Reg::L5, Reg::G4);
        // accumulate and advance
        a.smul(Reg::O0, Reg::O0, 31);
        a.add(Reg::O0, Reg::O0, Reg::L5);
        a.add(Reg::O1, Reg::O1, 1);
        a.sub(Reg::L2, Reg::L2, Reg::L4);
        a.add(Reg::L3, Reg::L3, Reg::L4);
        a.cmp(Reg::L2, 0);
        a.bne("frag_loop");
        // next packet
        a.add(Reg::L0, Reg::L0, 1);
        a.cmp(Reg::L0, Reg::G3);
        a.bcs("packet_loop"); // unsigned less-than: more packets to process
        a.report(CHAN_CHECKSUM, Reg::O0);
        a.report(CHAN_METRIC, Reg::O1);
        a.halt();

        a.assemble().expect("frag assembles")
    }

    fn expected_reports(&self) -> Vec<(u16, u32)> {
        let (acc, frags) = self.reference();
        vec![(CHAN_CHECKSUM, acc), (CHAN_METRIC, frags)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_verified;
    use leon_sim::LeonConfig;

    #[test]
    fn guest_matches_reference() {
        let w = Frag::scaled(Scale::Tiny);
        let r = run_verified(&w, &LeonConfig::base(), 100_000_000).unwrap();
        let frags = r.report(CHAN_METRIC).unwrap();
        // large packets produce multiple fragments
        assert!(frags > w.packets, "expected fragmentation, got {frags} fragments");
    }

    #[test]
    fn checksum_helper_matches_known_vector() {
        // classic example header checksum property: checksum of a header whose
        // checksum field is the computed value sums to 0xffff
        let hdr = [0x4500_0073u32, 0x0000_4000, 0x4011_0000, 0xc0a8_0001, 0xc0a8_00c7];
        let cks = Frag::ip_checksum(&hdr);
        let mut patched = hdr;
        patched[2] |= cks;
        let mut sum: u32 = 0;
        for w in patched {
            sum += (w & 0xffff) + (w >> 16);
        }
        sum = (sum & 0xffff) + (sum >> 16);
        sum = (sum & 0xffff) + (sum >> 16);
        assert_eq!(sum, 0xffff);
    }

    #[test]
    fn dcache_size_barely_matters() {
        // FRAG streams its trace once, so enlarging the dcache must not
        // change the cycle count by more than a couple of percent
        let w = Frag::scaled(Scale::Tiny);
        let mut small = LeonConfig::base();
        small.dcache.way_kb = 1;
        let mut big = LeonConfig::base();
        big.dcache.way_kb = 32;
        let rs = run_verified(&w, &small, 200_000_000).unwrap();
        let rb = run_verified(&w, &big, 200_000_000).unwrap();
        let gain = 1.0 - rb.stats.cycles as f64 / rs.stats.cycles as f64;
        assert!(gain.abs() < 0.03, "FRAG should be nearly cache-insensitive, gain {gain:.4}");
    }

    #[test]
    fn computation_dominates_memory() {
        let w = Frag::scaled(Scale::Tiny);
        let r = run_verified(&w, &LeonConfig::base(), 200_000_000).unwrap();
        // far more instructions than memory accesses
        assert!(r.stats.instructions > 3 * (r.stats.loads + r.stats.stores));
    }
}
