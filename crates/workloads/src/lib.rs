//! # workloads
//!
//! The four benchmark applications of the `liquid-autoreconf` reproduction of
//! *"Automatic Application-Specific Microarchitecture Reconfiguration"*
//! (IPDPS 2006), re-implemented as guest programs for the LEON2-like
//! simulator:
//!
//! * [`Blastn`] — seed-and-extend DNA search (computation and memory-access
//!   intensive);
//! * [`Drr`] — CommBench deficit-round-robin fair scheduler (computation
//!   intensive, ~tens-of-kilobytes working set);
//! * [`Frag`] — CommBench IP packet fragmentation (computation intensive,
//!   streaming);
//! * [`Arith`] — the BYTE arithmetic loop (register-only, not memory
//!   intensive).
//!
//! Every workload generates its inputs deterministically from a seed, embeds
//! them in the program image, and reports checksums that a host-side
//! reference implementation predicts, so functional correctness is asserted
//! on every candidate configuration the optimiser evaluates.
//!
//! ```
//! use workloads::{Arith, Scale, Workload};
//! use leon_sim::LeonConfig;
//!
//! let workload = Arith::scaled(Scale::Tiny);
//! let result = workloads::run_verified(&workload, &LeonConfig::base(), 10_000_000).unwrap();
//! assert!(result.stats.cycles > 0);
//! ```

#![warn(missing_docs)]

pub mod arith;
pub mod blastn;
pub mod drr;
pub mod frag;
pub mod inputs;
pub mod workload;

pub use arith::Arith;
pub use blastn::Blastn;
pub use drr::Drr;
pub use frag::Frag;
pub use workload::{
    capture_verified, guest_instructions_executed, record_trace_payload_read, run_verified,
    trace_payload_bytes_read, ParseScaleError, Scale, Workload, CHAN_CHECKSUM, CHAN_METRIC,
};

/// The paper's benchmark suite at a given problem scale, in the order used
/// throughout the paper's tables (BLASTN, DRR, FRAG, Arith).
pub fn benchmark_suite(scale: Scale) -> Vec<Box<dyn Workload + Send + Sync>> {
    vec![
        Box::new(Blastn::scaled(scale)),
        Box::new(Drr::scaled(scale)),
        Box::new(Frag::scaled(scale)),
        Box::new(Arith::scaled(scale)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_papers_four_benchmarks() {
        let suite = benchmark_suite(Scale::Tiny);
        let names: Vec<_> = suite.iter().map(|w| w.name().to_string()).collect();
        assert_eq!(names, vec!["BLASTN", "DRR", "FRAG", "Arith"]);
    }

    #[test]
    fn all_programs_assemble_and_fit_memory() {
        for scale in Scale::ALL {
            for w in benchmark_suite(scale) {
                let p = w.build();
                assert!(!p.is_empty(), "{} produced an empty program", w.name());
                assert!(p.required_memory() <= 1 << 20, "{} image too large", w.name());
            }
        }
    }

    #[test]
    fn fingerprints_are_stable_and_distinguish_workloads_and_scales() {
        let a1 = Arith::scaled(Scale::Tiny);
        let a2 = Arith::scaled(Scale::Tiny);
        assert_eq!(a1.fingerprint(), a2.fingerprint(), "same workload, same fingerprint");
        assert_ne!(
            Arith::scaled(Scale::Tiny).fingerprint(),
            Arith::scaled(Scale::Small).fingerprint(),
            "scale changes the embedded inputs and must change the fingerprint"
        );
        let suite = benchmark_suite(Scale::Tiny);
        let fps: std::collections::BTreeSet<u64> =
            suite.iter().map(|w| w.fingerprint()).collect();
        assert_eq!(fps.len(), suite.len(), "suite fingerprints must be distinct");
    }

    #[test]
    fn verified_runs_tick_the_guest_instruction_counter() {
        let w = Arith::scaled(Scale::Tiny);
        let before = guest_instructions_executed();
        let run = run_verified(&w, &leon_sim::LeonConfig::base(), 100_000_000).unwrap();
        let after = guest_instructions_executed();
        assert!(
            after - before >= run.stats.instructions,
            "counter must advance by at least this run's instructions"
        );
    }

    #[test]
    fn scale_names_round_trip() {
        for scale in Scale::ALL {
            assert_eq!(Scale::parse(scale.name()), Ok(scale));
        }
        // forgiving about case and whitespace, strict about the name
        assert_eq!(Scale::parse(" Medium\n"), Ok(Scale::Medium));
        assert!(Scale::Tiny < Scale::Small && Scale::Small < Scale::Medium && Scale::Medium < Scale::Large);
    }

    #[test]
    fn scale_parse_rejects_unknown_names_with_a_precise_error() {
        for bad in ["huge", "", "mediun", "tiny,small"] {
            let err = Scale::parse(bad).unwrap_err();
            assert_eq!(err.input(), bad);
            assert!(err.to_string().contains("expected one of"), "got: {err}");
        }
    }

    #[test]
    fn trace_payload_counter_is_monotonic() {
        let before = trace_payload_bytes_read();
        record_trace_payload_read(123);
        assert!(trace_payload_bytes_read() >= before + 123);
    }
}
