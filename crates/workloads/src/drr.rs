//! Benchmark II — CommBench DRR.
//!
//! "DRR is a Deficit Round Robin fair scheduling algorithm used for bandwidth
//! scheduling on network links, as implemented in switches.  DRR is
//! computation intensive."  (paper, Section 2.5)
//!
//! The guest program runs a deficit-round-robin scheduler in steady state
//! over a set of continuously backlogged flows: each flow has a ring of
//! queued packet lengths, each round adds a quantum to the flow's deficit
//! counter and transmits packets while the deficit allows.  Per transmitted
//! packet the scheduler touches a couple of words of the packet in a shared
//! payload pool and folds its length into a multiplicative checksum, giving
//! the workload the mix of multiplication and ~tens-of-kilobytes working set
//! the paper's DRR exhibits (it benefits strongly from a 32 KB data cache and
//! from a faster multiplier).

use leon_isa::{Asm, Program, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::inputs::packet_trace;
use crate::workload::{Scale, Workload, CHAN_CHECKSUM, CHAN_METRIC};

/// Report channel carrying the number of bytes transmitted.
pub const CHAN_BYTES: u16 = 3;

/// Number of flows (queues).
const FLOWS: u32 = 16;
/// Scheduler quantum added per round, in bytes.
const QUANTUM: u32 = 700;
/// Multiplier used to scatter payload-pool accesses.
const POOL_HASH: u32 = 167;

/// The CommBench DRR benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Drr {
    /// Queued packets per flow (ring size).
    pub packets_per_flow: u32,
    /// Size of the shared payload pool in words (must be a power of two).
    pub pool_words: u32,
    /// Number of packet transmissions to simulate.
    pub target_packets: u32,
    /// RNG seed for the input generator.
    pub seed: u64,
}

impl Drr {
    /// Construct with explicit parameters.
    pub fn new(packets_per_flow: u32, pool_words: u32, target_packets: u32, seed: u64) -> Drr {
        assert!(pool_words.is_power_of_two(), "pool size must be a power of two");
        assert!(packets_per_flow > 0 && target_packets > 0);
        Drr { packets_per_flow, pool_words, target_packets, seed }
    }

    /// Construct for a problem-size preset.
    pub fn scaled(scale: Scale) -> Drr {
        match scale {
            Scale::Tiny => Drr::new(64, 512, 2_000, 23),
            Scale::Small => Drr::new(256, 2048, 30_000, 23),
            Scale::Medium => Drr::new(256, 2048, 100_000, 23),
            Scale::Large => Drr::new(256, 2048, 300_000, 23),
        }
    }

    /// Per-flow packet length rings (flow-major).
    fn lengths(&self) -> Vec<u32> {
        let total = (FLOWS * self.packets_per_flow) as usize;
        let trace = packet_trace(self.seed, total, FLOWS);
        // distribute lengths flow-major so that flow f's ring is contiguous
        trace.iter().map(|p| p.length).collect()
    }

    /// Shared payload pool contents (one slack word appended so that the
    /// guest's second word read never leaves the pool).
    fn pool(&self) -> Vec<u32> {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x00d1_ce00);
        (0..self.pool_words + 1).map(|_| rng.gen()).collect()
    }

    /// Host-side reference implementation.
    fn reference(&self) -> (u32, u32, u32) {
        let lengths = self.lengths();
        let pool = self.pool();
        let per_flow = self.packets_per_flow;
        let mask = self.pool_words - 1;
        let mut deficit = vec![0u32; FLOWS as usize];
        let mut head = vec![0u32; FLOWS as usize];
        let mut checksum: u32 = 0;
        let mut packets: u32 = 0;
        let mut bytes: u32 = 0;
        'outer: loop {
            for f in 0..FLOWS as usize {
                let mut d = deficit[f].wrapping_add(QUANTUM);
                let mut h = head[f];
                loop {
                    let len = lengths[f * per_flow as usize + h as usize];
                    if len > d {
                        break;
                    }
                    d -= len;
                    bytes = bytes.wrapping_add(len);
                    checksum = checksum.wrapping_mul(31).wrapping_add(len);
                    let idx = (len.wrapping_mul(POOL_HASH) & mask) as usize;
                    checksum = checksum.wrapping_add(pool[idx]);
                    checksum ^= pool[idx + 1];
                    h += 1;
                    if h >= per_flow {
                        h = 0;
                    }
                    packets += 1;
                    if packets >= self.target_packets {
                        break 'outer;
                    }
                }
                deficit[f] = d;
                head[f] = h;
            }
        }
        (checksum, packets, bytes)
    }
}

impl Workload for Drr {
    fn name(&self) -> &str {
        "DRR"
    }

    fn description(&self) -> &str {
        "deficit round robin fair scheduler over continuously backlogged flows; computation intensive"
    }

    fn build(&self) -> Program {
        let lengths = self.lengths();
        let pool = self.pool();
        let per_flow = self.packets_per_flow;

        let mut a = Asm::new("drr");
        a.data_label("lengths");
        a.data_words(&lengths);
        a.data_label("pool");
        a.data_words(&pool);
        a.data_label("deficit");
        a.data_zeros((FLOWS * 4) as usize);
        a.data_label("head");
        a.data_zeros((FLOWS * 4) as usize);

        // g1 = lengths, g2 = pool, g3 = deficit, g4 = head,
        // g5 = packets per flow, g6 = pool index mask, g7 = quantum
        a.set_data_addr(Reg::G1, "lengths");
        a.set_data_addr(Reg::G2, "pool");
        a.set_data_addr(Reg::G3, "deficit");
        a.set_data_addr(Reg::G4, "head");
        a.set(Reg::G5, per_flow);
        a.set(Reg::G6, self.pool_words - 1);
        a.set(Reg::G7, QUANTUM);
        // o0 = checksum, o1 = packets, o2 = bytes, l7 = target
        a.clr(Reg::O0);
        a.clr(Reg::O1);
        a.clr(Reg::O2);
        a.set(Reg::L7, self.target_packets);

        a.label("round");
        a.clr(Reg::L0); // flow index
        a.label("flow_loop");
        // o4 = base address of this flow's length ring
        a.smul(Reg::O4, Reg::L0, Reg::G5);
        a.sll(Reg::O4, Reg::O4, 2);
        a.add(Reg::O4, Reg::O4, Reg::G1);
        // l1 = deficit[f] + quantum, l4 = &deficit[f]
        a.sll(Reg::L4, Reg::L0, 2);
        a.add(Reg::L4, Reg::L4, Reg::G3);
        a.ld(Reg::L1, Reg::L4, 0);
        a.add(Reg::L1, Reg::L1, Reg::G7);
        // l2 = head[f], l5 = &head[f]
        a.sll(Reg::L5, Reg::L0, 2);
        a.add(Reg::L5, Reg::L5, Reg::G4);
        a.ld(Reg::L2, Reg::L5, 0);

        a.label("serve");
        a.sll(Reg::O5, Reg::L2, 2);
        a.add(Reg::O5, Reg::O5, Reg::O4);
        a.ld(Reg::L3, Reg::O5, 0); // len
        a.cmp(Reg::L3, Reg::L1);
        a.bgu("flow_done"); // len > deficit
        a.sub(Reg::L1, Reg::L1, Reg::L3);
        a.add(Reg::O2, Reg::O2, Reg::L3);
        a.smul(Reg::O0, Reg::O0, 31);
        a.add(Reg::O0, Reg::O0, Reg::L3);
        // touch the packet in the payload pool
        a.smul(Reg::O5, Reg::L3, POOL_HASH as i32);
        a.and_(Reg::O5, Reg::O5, Reg::G6);
        a.sll(Reg::O5, Reg::O5, 2);
        a.add(Reg::O5, Reg::O5, Reg::G2);
        a.ld(Reg::L6, Reg::O5, 0);
        a.add(Reg::O0, Reg::O0, Reg::L6);
        a.ld(Reg::L6, Reg::O5, 4);
        a.xor(Reg::O0, Reg::O0, Reg::L6);
        // advance head with wrap-around
        a.add(Reg::L2, Reg::L2, 1);
        a.cmp(Reg::L2, Reg::G5);
        a.bl("no_wrap");
        a.clr(Reg::L2);
        a.label("no_wrap");
        a.add(Reg::O1, Reg::O1, 1);
        a.cmp(Reg::O1, Reg::L7);
        a.bcc("done"); // unsigned >=: reached the transmission target
        a.ba("serve");

        a.label("flow_done");
        a.st(Reg::L1, Reg::L4, 0);
        a.st(Reg::L2, Reg::L5, 0);
        a.add(Reg::L0, Reg::L0, 1);
        a.cmp(Reg::L0, FLOWS as i32);
        a.bl("flow_loop");
        a.ba("round");

        a.label("done");
        a.report(CHAN_CHECKSUM, Reg::O0);
        a.report(CHAN_METRIC, Reg::O1);
        a.report(CHAN_BYTES, Reg::O2);
        a.halt();

        a.assemble().expect("drr assembles")
    }

    fn expected_reports(&self) -> Vec<(u16, u32)> {
        let (checksum, packets, bytes) = self.reference();
        vec![(CHAN_CHECKSUM, checksum), (CHAN_METRIC, packets), (CHAN_BYTES, bytes)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_verified;
    use leon_sim::{LeonConfig, Multiplier};

    #[test]
    fn guest_matches_reference() {
        let w = Drr::scaled(Scale::Tiny);
        let r = run_verified(&w, &LeonConfig::base(), 100_000_000).unwrap();
        assert_eq!(r.report(CHAN_METRIC), Some(w.target_packets));
        assert!(r.report(CHAN_BYTES).unwrap() >= 64 * w.target_packets);
    }

    #[test]
    fn fairness_all_flows_drain_roughly_evenly() {
        // every flow's ring is backlogged, so the byte count must be close to
        // target_packets * mean packet length — a sanity check that the
        // scheduler serves all flows rather than spinning on one
        let w = Drr::scaled(Scale::Tiny);
        let (_c, packets, bytes) = w.reference();
        let mean = bytes as f64 / packets as f64;
        assert!(mean > 100.0 && mean < 1200.0, "mean packet length {mean}");
    }

    #[test]
    fn bigger_dcache_helps_strongly() {
        let w = Drr::scaled(Scale::Small);
        let mut small = LeonConfig::base();
        small.dcache.way_kb = 4;
        let mut big = LeonConfig::base();
        big.dcache.way_kb = 32;
        let rs = run_verified(&w, &small, 500_000_000).unwrap();
        let rb = run_verified(&w, &big, 500_000_000).unwrap();
        assert!(rb.stats.cycles < rs.stats.cycles);
        let gain = 1.0 - rb.stats.cycles as f64 / rs.stats.cycles as f64;
        assert!(gain > 0.02, "expected a clear dcache gain, got {gain:.4}");
    }

    #[test]
    fn multiplier_matters() {
        let w = Drr::scaled(Scale::Tiny);
        let base = run_verified(&w, &LeonConfig::base(), 100_000_000).unwrap();
        let mut fast = LeonConfig::base();
        fast.iu.multiplier = Multiplier::M32x32;
        let f = run_verified(&w, &fast, 100_000_000).unwrap();
        assert!(f.stats.cycles < base.stats.cycles);
        assert!(base.stats.mul_ops > w.target_packets as u64);
    }

    #[test]
    fn no_hardware_divide_needed() {
        let w = Drr::scaled(Scale::Tiny);
        let r = run_verified(&w, &LeonConfig::base(), 100_000_000).unwrap();
        assert_eq!(r.stats.div_ops, 0);
    }
}
