//! Benchmark I — BLASTN.
//!
//! "BLASTN is a variant of BLAST used to compare DNA sequences.  BLASTN is
//! computation and memory-access intensive."  (paper, Section 2.5)
//!
//! The guest program is a seed-and-extend nucleotide search in the style of
//! BLASTN: the query is split into seed words; for every seed batch the
//! database is scanned with a running 4-base signature, candidate positions
//! whose signature matches a seed are verified base-by-base and extended, and
//! the longest extension plus a hit count are reported.  A multiplicative
//! scan checksum (one multiply per database base, standing in for BLAST's
//! composition statistics) gives the benchmark the multiplier sensitivity the
//! paper observes, and the repeated passes over a multi-kilobyte database give
//! it the data-cache sensitivity of Figure 2.

use leon_isa::{Asm, Program, Reg};
use serde::{Deserialize, Serialize};

use crate::inputs::{dna_sequence, plant_matches};
use crate::workload::{Scale, Workload, CHAN_CHECKSUM, CHAN_METRIC};

/// Report channel carrying the best extension length found.
pub const CHAN_BEST: u16 = 3;

/// Seed word length that must match before a hit is counted.
const SEED_LEN: u32 = 11;
/// Maximum extension length per candidate.
const MAX_EXT: u32 = 32;
/// Query length in bases.
const QUERY_LEN: usize = 64;
/// Seeds examined per database pass.
const SEEDS_PER_BATCH: usize = 4;

/// The BLASTN benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Blastn {
    /// Database length in bases (bytes).
    pub db_len: usize,
    /// Number of seed batches (each batch is one full database pass).
    pub batches: usize,
    /// Number of query copies planted in the database.
    pub planted: usize,
    /// RNG seed for the input generator.
    pub seed: u64,
}

impl Blastn {
    /// Construct with explicit parameters.
    pub fn new(db_len: usize, batches: usize, planted: usize, seed: u64) -> Blastn {
        assert!(db_len >= 256, "database too small");
        assert!(batches >= 1, "at least one seed batch is required");
        Blastn { db_len, batches, planted, seed }
    }

    /// Construct for a problem-size preset.
    pub fn scaled(scale: Scale) -> Blastn {
        match scale {
            Scale::Tiny => Blastn::new(2048, 2, 4, 11),
            Scale::Small => Blastn::new(24 * 1024, 4, 12, 11),
            Scale::Medium => Blastn::new(28 * 1024, 7, 16, 11),
            Scale::Large => Blastn::new(28 * 1024, 12, 24, 11),
        }
    }

    fn query(&self) -> Vec<u8> {
        dna_sequence(self.seed ^ 0xb10c_ba5e, QUERY_LEN)
    }

    fn database(&self) -> Vec<u8> {
        let mut db = dna_sequence(self.seed, self.db_len);
        let query = self.query();
        plant_matches(&mut db, &query, self.planted, self.seed.wrapping_add(1));
        db
    }

    /// Query offsets of all seeds (batch-major).
    fn seed_offsets(&self) -> Vec<u32> {
        (0..self.batches * SEEDS_PER_BATCH)
            .map(|k| ((k * 2) % (QUERY_LEN - MAX_EXT as usize)) as u32)
            .collect()
    }

    /// 4-base signature of the query starting at `off`.
    fn signature(query: &[u8], off: u32) -> u32 {
        let o = off as usize;
        ((query[o] as u32) << 6)
            | ((query[o + 1] as u32) << 4)
            | ((query[o + 2] as u32) << 2)
            | (query[o + 3] as u32)
    }

    /// Host-side reference implementation (mirrors the guest exactly).
    fn reference(&self) -> (u32, u32, u32) {
        let db = self.database();
        let query = self.query();
        let offsets = self.seed_offsets();
        let positions = self.db_len - QUERY_LEN;
        let mut checksum: u32 = 0;
        let mut hits: u32 = 0;
        let mut best: u32 = 0;
        for batch in 0..self.batches {
            let sigs: Vec<u32> = (0..SEEDS_PER_BATCH)
                .map(|k| Self::signature(&query, offsets[batch * SEEDS_PER_BATCH + k]))
                .collect();
            let mut sig: u32 = 0;
            // prime the signature with the first 3 bases (no hit checks)
            for &b in &db[0..3] {
                sig = ((sig << 2) | b as u32) & 0xff;
                checksum = checksum.wrapping_mul(31).wrapping_add(b as u32);
            }
            for i in 3..positions {
                let b = db[i] as u32;
                sig = ((sig << 2) | b) & 0xff;
                checksum = checksum.wrapping_mul(31).wrapping_add(b);
                for (k, &s) in sigs.iter().enumerate() {
                    if sig == s {
                        let q_off = offsets[batch * SEEDS_PER_BATCH + k] as usize;
                        let start = i - 3;
                        let mut len = 0u32;
                        while len < MAX_EXT
                            && db[start + len as usize] == query[q_off + len as usize]
                        {
                            len += 1;
                        }
                        if len >= SEED_LEN {
                            hits = hits.wrapping_add(1);
                            checksum ^= start as u32;
                            if len > best {
                                best = len;
                            }
                        }
                        break; // the guest verifies only the first matching seed
                    }
                }
            }
        }
        (checksum, hits, best)
    }
}

impl Workload for Blastn {
    fn name(&self) -> &str {
        "BLASTN"
    }

    fn description(&self) -> &str {
        "seed-and-extend DNA search over a synthetic nucleotide database; computation and memory-access intensive"
    }

    fn build(&self) -> Program {
        let db = self.database();
        let query = self.query();
        let offsets = self.seed_offsets();
        let sigs: Vec<u32> = offsets.iter().map(|&o| Self::signature(&query, o)).collect();
        let positions = (self.db_len - QUERY_LEN) as u32;

        let mut a = Asm::new("blastn");
        a.data_label("db");
        a.data_bytes(&db);
        a.data_label("query");
        a.data_bytes(&query);
        a.data_label("seed_sig");
        a.data_words(&sigs);
        a.data_label("seed_off");
        a.data_words(&offsets);

        // g1 = db, g6 = query, o0 = checksum, o1 = hits, o2 = best, l7 = batch
        a.set_data_addr(Reg::G1, "db");
        a.set_data_addr(Reg::G6, "query");
        a.clr(Reg::O0);
        a.clr(Reg::O1);
        a.clr(Reg::O2);
        a.clr(Reg::L7);

        a.label("batch_loop");
        // load the 4 seed signatures of this batch into %g2..%g5
        a.set_data_addr(Reg::L6, "seed_sig");
        a.sll(Reg::G7, Reg::L7, 4); // batch * 16 bytes
        a.add(Reg::L6, Reg::L6, Reg::G7);
        a.ld(Reg::G2, Reg::L6, 0);
        a.ld(Reg::G3, Reg::L6, 4);
        a.ld(Reg::G4, Reg::L6, 8);
        a.ld(Reg::G5, Reg::L6, 12);
        // prime the running signature with the first 3 bases
        a.mov(Reg::L0, Reg::G1); // db pointer
        a.clr(Reg::L2); // running signature
        for j in 0..3 {
            a.ldub(Reg::L3, Reg::L0, j);
            a.sll(Reg::L2, Reg::L2, 2);
            a.or_(Reg::L2, Reg::L2, Reg::L3);
            a.and_(Reg::L2, Reg::L2, 0xff);
            a.smul(Reg::O0, Reg::O0, 31);
            a.add(Reg::O0, Reg::O0, Reg::L3);
        }
        a.add(Reg::L0, Reg::L0, 3);
        a.set(Reg::L4, positions - 3); // remaining positions

        a.label("scan");
        a.ldub(Reg::L3, Reg::L0, 0);
        a.sll(Reg::L2, Reg::L2, 2);
        a.or_(Reg::L2, Reg::L2, Reg::L3);
        a.and_(Reg::L2, Reg::L2, 0xff);
        a.smul(Reg::O0, Reg::O0, 31);
        a.add(Reg::O0, Reg::O0, Reg::L3);
        a.cmp(Reg::L2, Reg::G2);
        a.be("hit0");
        a.cmp(Reg::L2, Reg::G3);
        a.be("hit1");
        a.cmp(Reg::L2, Reg::G4);
        a.be("hit2");
        a.cmp(Reg::L2, Reg::G5);
        a.be("hit3");
        a.label("next");
        a.add(Reg::L0, Reg::L0, 1);
        a.subcc(Reg::L4, Reg::L4, 1);
        a.bne("scan");
        // batch done
        a.add(Reg::L7, Reg::L7, 1);
        a.cmp(Reg::L7, self.batches as i32);
        a.bl("batch_loop");
        a.report(CHAN_CHECKSUM, Reg::O0);
        a.report(CHAN_METRIC, Reg::O1);
        a.report(CHAN_BEST, Reg::O2);
        a.halt();

        a.label("hit0");
        a.clr(Reg::L5);
        a.ba("verify");
        a.label("hit1");
        a.mov(Reg::L5, 1);
        a.ba("verify");
        a.label("hit2");
        a.mov(Reg::L5, 2);
        a.ba("verify");
        a.label("hit3");
        a.mov(Reg::L5, 3);

        a.label("verify");
        // q_off = seed_off[batch*4 + k]
        a.sll(Reg::G7, Reg::L7, 2);
        a.add(Reg::G7, Reg::G7, Reg::L5);
        a.sll(Reg::G7, Reg::G7, 2);
        a.set_data_addr(Reg::O3, "seed_off");
        a.add(Reg::O3, Reg::O3, Reg::G7);
        a.ld(Reg::O3, Reg::O3, 0);
        a.add(Reg::O5, Reg::G6, Reg::O3); // query pointer
        a.sub(Reg::O4, Reg::L0, 3); // database start pointer
        a.clr(Reg::O3); // match length
        a.label("extend");
        a.ldub(Reg::G7, Reg::O4, 0);
        a.ldub(Reg::L6, Reg::O5, 0);
        a.cmp(Reg::G7, Reg::L6);
        a.bne("extend_done");
        a.add(Reg::O3, Reg::O3, 1);
        a.add(Reg::O4, Reg::O4, 1);
        a.add(Reg::O5, Reg::O5, 1);
        a.cmp(Reg::O3, MAX_EXT as i32);
        a.bl("extend");
        a.label("extend_done");
        a.cmp(Reg::O3, SEED_LEN as i32);
        a.bl("next"); // collision, not a real hit
        a.add(Reg::O1, Reg::O1, 1); // hits++
        a.sub(Reg::G7, Reg::L0, 3);
        a.sub(Reg::G7, Reg::G7, Reg::G1); // hit position
        a.xor(Reg::O0, Reg::O0, Reg::G7);
        a.cmp(Reg::O3, Reg::O2);
        a.ble("next");
        a.mov(Reg::O2, Reg::O3); // best = match length
        a.ba("next");

        a.assemble().expect("blastn assembles")
    }

    fn expected_reports(&self) -> Vec<(u16, u32)> {
        let (checksum, hits, best) = self.reference();
        vec![(CHAN_CHECKSUM, checksum), (CHAN_METRIC, hits), (CHAN_BEST, best)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_verified;
    use leon_sim::{LeonConfig, Multiplier};

    #[test]
    fn guest_matches_reference_and_finds_planted_hits() {
        let w = Blastn::scaled(Scale::Tiny);
        let r = run_verified(&w, &LeonConfig::base(), 50_000_000).unwrap();
        let hits = r.report(CHAN_METRIC).unwrap();
        assert!(hits >= w.planted as u32, "planted alignments must be found (hits = {hits})");
        assert_eq!(r.report(CHAN_BEST), Some(MAX_EXT));
    }

    #[test]
    fn memory_access_intensive() {
        let w = Blastn::scaled(Scale::Tiny);
        let r = run_verified(&w, &LeonConfig::base(), 50_000_000).unwrap();
        // roughly one database load per scanned position
        assert!(r.stats.loads as usize > w.db_len);
    }

    #[test]
    fn bigger_dcache_helps() {
        let w = Blastn::scaled(Scale::Small);
        let mut small = LeonConfig::base();
        small.dcache.way_kb = 4;
        let mut big = LeonConfig::base();
        big.dcache.way_kb = 32;
        let rs = run_verified(&w, &small, 200_000_000).unwrap();
        let rb = run_verified(&w, &big, 200_000_000).unwrap();
        assert!(rb.stats.cycles < rs.stats.cycles);
        assert!(rb.stats.dcache.read_misses < rs.stats.dcache.read_misses);
    }

    #[test]
    fn faster_multiplier_helps() {
        let w = Blastn::scaled(Scale::Tiny);
        let base = run_verified(&w, &LeonConfig::base(), 50_000_000).unwrap();
        let mut fast = LeonConfig::base();
        fast.iu.multiplier = Multiplier::M32x32;
        let f = run_verified(&w, &fast, 50_000_000).unwrap();
        assert!(f.stats.cycles < base.stats.cycles);
    }

    #[test]
    fn no_hardware_divide_needed() {
        let w = Blastn::scaled(Scale::Tiny);
        let r = run_verified(&w, &LeonConfig::base(), 50_000_000).unwrap();
        assert_eq!(r.stats.div_ops, 0);
    }
}
