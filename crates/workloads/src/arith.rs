//! Benchmark IV — BYTE `Arith`.
//!
//! "Arith does simple arithmetics of addition, multiplication and division in
//! a loop.  It has been used to test processor speed for arithmetic.  Arith is
//! not memory intensive."  (paper, Section 2.5)
//!
//! The guest program keeps everything in registers: per iteration it performs
//! an addition, a multiplication and a division, exactly the mix the BYTE
//! benchmark exercises.  Because it never touches memory in its hot loop, the
//! data-cache parameters have no effect on it — the property the paper relies
//! on in Figure 4 ("No effect, as application is not data intensive").

use leon_isa::{Asm, Program, Reg};
use serde::{Deserialize, Serialize};

use crate::workload::{Scale, Workload, CHAN_CHECKSUM, CHAN_METRIC};

/// The BYTE Arith benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arith {
    /// Number of loop iterations.
    pub iterations: u32,
}

impl Arith {
    /// Construct with an explicit iteration count.
    pub fn new(iterations: u32) -> Arith {
        assert!(iterations > 0);
        Arith { iterations }
    }

    /// Construct for a problem-size preset.
    pub fn scaled(scale: Scale) -> Arith {
        match scale {
            Scale::Tiny => Arith::new(500),
            Scale::Small => Arith::new(60_000),
            Scale::Medium => Arith::new(200_000),
            Scale::Large => Arith::new(600_000),
        }
    }

    /// Host-side reference implementation (mirrors the guest arithmetic
    /// exactly, including wrap-around).
    fn reference(&self) -> (u32, u32) {
        let mut acc_add: u32 = 0;
        let mut acc_mul: u32 = 1;
        let mut acc_div: u32 = 0;
        for i in 1..=self.iterations {
            acc_add = acc_add.wrapping_add(i);
            acc_mul = acc_mul.wrapping_mul(i).wrapping_add(7);
            let q = acc_add / 7;
            acc_div = acc_div.wrapping_add(q);
        }
        let checksum = acc_add ^ acc_mul ^ acc_div;
        (checksum, self.iterations)
    }
}

impl Workload for Arith {
    fn name(&self) -> &str {
        "Arith"
    }

    fn description(&self) -> &str {
        "BYTE arithmetic loop: addition, multiplication and division on registers; not memory intensive"
    }

    fn build(&self) -> Program {
        let mut a = Asm::new("arith");
        // l0 = iteration bound, l1 = i, o0 = acc_add, l2 = acc_mul,
        // l3 = acc_div, l5 = scratch quotient
        a.set(Reg::L0, self.iterations);
        a.set(Reg::L1, 1);
        a.clr(Reg::O0);
        a.set(Reg::L2, 1);
        a.clr(Reg::L3);
        a.label("loop");
        a.add(Reg::O0, Reg::O0, Reg::L1); // acc_add += i
        a.smul(Reg::L2, Reg::L2, Reg::L1); // acc_mul *= i
        a.add(Reg::L2, Reg::L2, 7); // acc_mul += 7
        a.udiv(Reg::L5, Reg::O0, 7); // q = acc_add / 7
        a.add(Reg::L3, Reg::L3, Reg::L5); // acc_div += q
        a.add(Reg::L1, Reg::L1, 1); // i += 1
        a.cmp(Reg::L1, Reg::L0);
        a.bleu("loop"); // while i <= n
        // checksum = acc_add ^ acc_mul ^ acc_div
        a.xor(Reg::O0, Reg::O0, Reg::L2);
        a.xor(Reg::O0, Reg::O0, Reg::L3);
        a.report(CHAN_CHECKSUM, Reg::O0);
        a.mov(Reg::O1, Reg::L0);
        a.report(CHAN_METRIC, Reg::O1);
        a.halt();
        a.assemble().expect("arith assembles")
    }

    fn expected_reports(&self) -> Vec<(u16, u32)> {
        let (checksum, iterations) = self.reference();
        vec![(CHAN_CHECKSUM, checksum), (CHAN_METRIC, iterations)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_verified;
    use leon_sim::{Divider, LeonConfig, Multiplier};

    #[test]
    fn guest_matches_reference() {
        let w = Arith::scaled(Scale::Tiny);
        let r = run_verified(&w, &LeonConfig::base(), 10_000_000).unwrap();
        assert_eq!(r.report(CHAN_METRIC), Some(500));
    }

    #[test]
    fn not_memory_intensive() {
        let w = Arith::scaled(Scale::Tiny);
        let r = run_verified(&w, &LeonConfig::base(), 10_000_000).unwrap();
        // the hot loop performs no loads or stores
        assert!(r.stats.loads < 10);
        assert!(r.stats.stores < 10);
        assert!(r.stats.dcache.accesses() < 10);
    }

    #[test]
    fn dcache_size_has_no_effect() {
        let w = Arith::scaled(Scale::Tiny);
        let mut small = LeonConfig::base();
        small.dcache.way_kb = 1;
        let mut large = LeonConfig::base();
        large.dcache.way_kb = 32;
        let a = run_verified(&w, &small, 10_000_000).unwrap();
        let b = run_verified(&w, &large, 10_000_000).unwrap();
        assert_eq!(a.stats.cycles, b.stats.cycles);
    }

    #[test]
    fn multiplier_and_divider_matter() {
        let w = Arith::scaled(Scale::Tiny);
        let base = run_verified(&w, &LeonConfig::base(), 10_000_000).unwrap();
        let mut fast_mul = LeonConfig::base();
        fast_mul.iu.multiplier = Multiplier::M32x32;
        let fm = run_verified(&w, &fast_mul, 10_000_000).unwrap();
        assert!(fm.stats.cycles < base.stats.cycles);
        let mut no_div = LeonConfig::base();
        no_div.iu.divider = Divider::None;
        let nd = run_verified(&w, &no_div, 10_000_000).unwrap();
        assert!(nd.stats.cycles > base.stats.cycles);
    }

    #[test]
    fn scales_are_ordered() {
        for pair in Scale::ALL.windows(2) {
            assert!(
                Arith::scaled(pair[0]).iterations < Arith::scaled(pair[1]).iterations,
                "{:?} must be smaller than {:?}",
                pair[0],
                pair[1]
            );
        }
    }
}
