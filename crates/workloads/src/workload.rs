//! The [`Workload`] trait and common helpers.

use leon_isa::Program;
use leon_sim::{LeonConfig, RunResult, SimError, Trace};
use serde::{Deserialize, Serialize};

/// Report channel that carries the workload's primary checksum.
pub const CHAN_CHECKSUM: u16 = 1;
/// Report channel that carries a secondary result metric (hits, packets, …).
pub const CHAN_METRIC: u16 = 2;

/// Problem-size presets for the benchmark suite.
///
/// The paper's benchmarks run for 10 seconds to 9 minutes on a 25 MHz LEON2;
/// simulating that many cycles for hundreds of candidate configurations would
/// make the experiments needlessly slow, so each workload supports scaled
/// problem sizes with identical code paths and memory-behaviour *shape*.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Scale {
    /// A few tens of thousands of cycles; used by unit tests.
    Tiny,
    /// A few million cycles; the default for the reproduction experiments.
    #[default]
    Small,
    /// Around ten million cycles; between `Small` and `Large`, sized for
    /// multi-workload campaign studies on multi-core hardware (opt in via
    /// `BENCH_SCALE=medium` / `--scale medium`; the campaign bench defaults
    /// to `Small`).
    Medium,
    /// Tens of millions of cycles; closest to the paper's runtimes
    /// (still far below the paper's wall-clock figures).
    Large,
}

impl Scale {
    /// Every preset, smallest problem first.
    pub const ALL: [Scale; 4] = [Scale::Tiny, Scale::Small, Scale::Medium, Scale::Large];

    /// Parse a preset name as used by the CLI / environment knobs.
    pub fn parse(name: &str) -> Option<Scale> {
        match name {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }

    /// Lower-case preset name (the `parse` spelling).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
        }
    }
}

/// A guest benchmark application.
pub trait Workload {
    /// Short name used in reports (e.g. `BLASTN`).
    fn name(&self) -> &str;

    /// One-line description of what the application does.
    fn description(&self) -> &str;

    /// Build the guest program image (code + input data).
    fn build(&self) -> Program;

    /// The reports the guest is expected to produce, computed by a host-side
    /// reference implementation.  Used to verify that the guest program is
    /// functionally correct on every configuration.
    fn expected_reports(&self) -> Vec<(u16, u32)>;

    /// Verify a run result against the reference implementation.
    fn verify(&self, result: &RunResult) -> Result<(), String> {
        for (channel, expected) in self.expected_reports() {
            match result.report(channel) {
                Some(actual) if actual == expected => {}
                Some(actual) => {
                    return Err(format!(
                        "{}: channel {channel}: expected {expected:#x}, got {actual:#x}",
                        self.name()
                    ))
                }
                None => {
                    return Err(format!("{}: channel {channel}: no report produced", self.name()))
                }
            }
        }
        Ok(())
    }
}

/// Run a workload on a configuration and verify its output.
pub fn run_verified(
    workload: &dyn Workload,
    config: &LeonConfig,
    max_cycles: u64,
) -> Result<RunResult, SimError> {
    let program = workload.build();
    let result = leon_sim::simulate(config, &program, max_cycles)?;
    if let Err(msg) = workload.verify(&result) {
        // A functional mismatch means the workload or simulator is broken —
        // surface it loudly rather than producing bogus experiment data.
        panic!("workload verification failed: {msg}");
    }
    Ok(result)
}

/// Run a workload once with trace capture enabled, verifying its output.
///
/// The returned [`Trace`] retimes any trace-invariant configuration change
/// through [`leon_sim::replay`] without re-executing the program — the
/// functional results (and therefore the verified checksums) are identical on
/// every such configuration by construction.
pub fn capture_verified(
    workload: &dyn Workload,
    config: &LeonConfig,
    max_cycles: u64,
) -> Result<(RunResult, Trace), SimError> {
    let program = workload.build();
    let (result, trace) = leon_sim::capture(config, &program, max_cycles)?;
    if let Err(msg) = workload.verify(&result) {
        panic!("workload verification failed: {msg}");
    }
    Ok((result, trace))
}
