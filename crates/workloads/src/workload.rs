//! The [`Workload`] trait and common helpers.

use std::sync::atomic::{AtomicU64, Ordering};

use leon_isa::Program;
use leon_sim::{LeonConfig, RunResult, SimError, Trace};
use serde::{Deserialize, Serialize};

/// Process-wide count of guest instructions retired through the verified
/// execution entry points ([`run_verified`] and [`capture_verified`]).
///
/// The incremental campaign store's headline guarantee — *a warm-store run
/// executes zero guest instructions for unchanged workloads* — is asserted
/// against deltas of this counter, so every code path that actually executes
/// guest code funnels through the two verified entry points and ticks it.
/// Trace replay never does.
static GUEST_INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);

/// Total guest instructions executed so far by this process through the
/// verified entry points.  Monotonic; compare deltas rather than resetting,
/// so concurrent measurements cannot clobber each other.
pub fn guest_instructions_executed() -> u64 {
    GUEST_INSTRUCTIONS.load(Ordering::Relaxed)
}

/// Process-wide count of serialised trace-payload bytes materialised from
/// artifact stores — the companion counter to [`guest_instructions_executed`].
///
/// The lazy-store guarantee — *a warm campaign run whose co-optimization
/// entry hits reads zero trace payload bytes* — is asserted against deltas
/// of this counter: the campaign layer ticks it whenever it actually loads a
/// stored trace payload, and envelope-only presence checks never do.
static TRACE_PAYLOAD_BYTES: AtomicU64 = AtomicU64::new(0);

/// Total trace-payload bytes read back from artifact stores so far by this
/// process.  Monotonic; compare deltas rather than resetting (see
/// [`guest_instructions_executed`]).
pub fn trace_payload_bytes_read() -> u64 {
    TRACE_PAYLOAD_BYTES.load(Ordering::Relaxed)
}

/// Record `bytes` of serialised trace payload read from an artifact store.
/// Called by the store-aware campaign layer; tests observe the total through
/// [`trace_payload_bytes_read`].
pub fn record_trace_payload_read(bytes: u64) {
    TRACE_PAYLOAD_BYTES.fetch_add(bytes, Ordering::Relaxed);
}

/// Report channel that carries the workload's primary checksum.
pub const CHAN_CHECKSUM: u16 = 1;
/// Report channel that carries a secondary result metric (hits, packets, …).
pub const CHAN_METRIC: u16 = 2;

/// Problem-size presets for the benchmark suite.
///
/// The paper's benchmarks run for 10 seconds to 9 minutes on a 25 MHz LEON2;
/// simulating that many cycles for hundreds of candidate configurations would
/// make the experiments needlessly slow, so each workload supports scaled
/// problem sizes with identical code paths and memory-behaviour *shape*.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Scale {
    /// A few tens of thousands of cycles; used by unit tests.
    Tiny,
    /// A few million cycles; the default for the reproduction experiments.
    #[default]
    Small,
    /// Around ten million cycles; between `Small` and `Large`, sized for
    /// multi-workload campaign studies on multi-core hardware (opt in via
    /// `BENCH_SCALE=medium` / `--scale medium`; the campaign bench defaults
    /// to `Small`).
    Medium,
    /// Tens of millions of cycles; closest to the paper's runtimes
    /// (still far below the paper's wall-clock figures).
    Large,
}

/// Error returned by [`Scale::parse`] for an unrecognised preset name.
///
/// Carries the offending input so CLI layers can surface a precise message
/// instead of silently falling back to a default (the silent fallback was a
/// real bug: `--scale mediun` used to run a whole campaign at `small`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseScaleError {
    input: String,
}

impl ParseScaleError {
    /// The string that failed to parse.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl std::fmt::Display for ParseScaleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scale `{}` (expected one of: tiny, small, medium, large)",
            self.input
        )
    }
}

impl std::error::Error for ParseScaleError {}

impl Scale {
    /// Every preset, smallest problem first.
    pub const ALL: [Scale; 4] = [Scale::Tiny, Scale::Small, Scale::Medium, Scale::Large];

    /// Parse a preset name as used by the CLI / environment knobs
    /// (whitespace-trimmed, case-insensitive).  An unrecognised name is an
    /// error, never a silent default.
    pub fn parse(name: &str) -> Result<Scale, ParseScaleError> {
        match name.trim().to_ascii_lowercase().as_str() {
            "tiny" => Ok(Scale::Tiny),
            "small" => Ok(Scale::Small),
            "medium" => Ok(Scale::Medium),
            "large" => Ok(Scale::Large),
            _ => Err(ParseScaleError { input: name.to_string() }),
        }
    }

    /// Lower-case preset name (the `parse` spelling).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
        }
    }
}

/// A guest benchmark application.
pub trait Workload {
    /// Short name used in reports (e.g. `BLASTN`).
    fn name(&self) -> &str;

    /// One-line description of what the application does.
    fn description(&self) -> &str;

    /// Build the guest program image (code + input data).
    fn build(&self) -> Program;

    /// The reports the guest is expected to produce, computed by a host-side
    /// reference implementation.  Used to verify that the guest program is
    /// functionally correct on every configuration.
    fn expected_reports(&self) -> Vec<(u16, u32)>;

    /// Stable content fingerprint of this workload instance.
    ///
    /// Covers the name, the fully assembled program image (which embeds the
    /// scaled, deterministically generated inputs — so two scales of the
    /// same benchmark fingerprint differently) and the expected reports.
    /// Artifact stores key captured traces and measured cost tables by this
    /// value: any change to the guest program or its expected behaviour
    /// yields a new fingerprint and therefore a recompute, never a stale
    /// artifact.
    ///
    /// Every variable-length field is length-prefixed, so byte streams
    /// cannot alias across field boundaries (e.g. a word moved from the end
    /// of the text segment to the start of the data segment changes the
    /// fingerprint even though the concatenated bytes would be identical).
    fn fingerprint(&self) -> u64 {
        let program = self.build();
        let reports = self.expected_reports();
        let mut image = Vec::with_capacity(
            64 + self.name().len() + program.name.len() + program.text.len() * 4 + program.data.len(),
        );
        let mut field = |bytes: &[u8]| {
            image.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            image.extend_from_slice(bytes);
        };
        field(self.name().as_bytes());
        field(program.name.as_bytes());
        field(&program.entry.to_le_bytes());
        field(&program.stack_top.to_le_bytes());
        field(&program.data_base.to_le_bytes());
        let text: Vec<u8> = program.text.iter().flat_map(|w| w.to_le_bytes()).collect();
        field(&text);
        field(&program.data);
        let reports: Vec<u8> = reports
            .iter()
            .flat_map(|(c, v)| {
                let mut pair = c.to_le_bytes().to_vec();
                pair.extend_from_slice(&v.to_le_bytes());
                pair
            })
            .collect();
        field(&reports);
        leon_sim::fnv1a64(&image)
    }

    /// Verify a run result against the reference implementation.
    fn verify(&self, result: &RunResult) -> Result<(), String> {
        for (channel, expected) in self.expected_reports() {
            match result.report(channel) {
                Some(actual) if actual == expected => {}
                Some(actual) => {
                    return Err(format!(
                        "{}: channel {channel}: expected {expected:#x}, got {actual:#x}",
                        self.name()
                    ))
                }
                None => {
                    return Err(format!("{}: channel {channel}: no report produced", self.name()))
                }
            }
        }
        Ok(())
    }
}

/// Run a workload on a configuration and verify its output.
pub fn run_verified(
    workload: &dyn Workload,
    config: &LeonConfig,
    max_cycles: u64,
) -> Result<RunResult, SimError> {
    let program = workload.build();
    let result = leon_sim::simulate(config, &program, max_cycles)?;
    GUEST_INSTRUCTIONS.fetch_add(result.stats.instructions, Ordering::Relaxed);
    if let Err(msg) = workload.verify(&result) {
        // A functional mismatch means the workload or simulator is broken —
        // surface it loudly rather than producing bogus experiment data.
        panic!("workload verification failed: {msg}");
    }
    Ok(result)
}

/// Run a workload once with trace capture enabled, verifying its output.
///
/// The returned [`Trace`] retimes any trace-invariant configuration change
/// through [`leon_sim::replay`] without re-executing the program — the
/// functional results (and therefore the verified checksums) are identical on
/// every such configuration by construction.
pub fn capture_verified(
    workload: &dyn Workload,
    config: &LeonConfig,
    max_cycles: u64,
) -> Result<(RunResult, Trace), SimError> {
    let program = workload.build();
    let (result, trace) = leon_sim::capture(config, &program, max_cycles)?;
    GUEST_INSTRUCTIONS.fetch_add(result.stats.instructions, Ordering::Relaxed);
    if let Err(msg) = workload.verify(&result) {
        panic!("workload verification failed: {msg}");
    }
    Ok((result, trace))
}
