//! End-to-end smoke test for the campaign service: a real
//! `autoreconf-serve` subprocess, a fan-out of concurrent clients covering
//! warm, cold and contended queries, and byte-identity of every answer
//! against a direct in-process, store-less campaign.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

use autoreconf::experiments::ExperimentOptions;
use autoreconf::{Campaign, ParameterSpace, Weights};
use autoreconf_service::Client;
use workloads::{benchmark_suite, Scale};

const MIX: [f64; 4] = [0.4, 0.3, 0.2, 0.1];
const CLIENTS: usize = 32;

static SCRATCH: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "autoreconf-service-{}-{}-{tag}",
        std::process::id(),
        SCRATCH.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The reference answers: a direct in-process campaign with the exact same
/// configuration the daemon builds, but *no store* — pure computation.
/// The population the warm phase asks over the wire: the shared mix, a
/// scalar multiple of it (dedups onto the same unique mix) and a skewed
/// one.  Named `mix-{i}` to match the server's wire-profile naming.
const POPULATION: [[f64; 4]; 3] =
    [MIX, [0.8, 0.6, 0.4, 0.2], [0.1, 0.1, 0.1, 0.7]];
const POPULATION_TOLERANCE_PCT: f64 = 5.0;

struct Reference {
    names: Vec<String>,
    outcomes: Vec<String>,
    sweeps: Vec<String>,
    co: String,
    population: String,
}

fn reference() -> Reference {
    let options = ExperimentOptions { scale: Scale::Tiny, ..ExperimentOptions::default() };
    let engine = Campaign::new()
        .with_space(ParameterSpace::dcache_geometry())
        .with_weights(Weights::runtime_optimized())
        .with_measurement(options.measurement());
    let suite = benchmark_suite(Scale::Tiny);
    let session = engine.session(&suite).unwrap();
    Reference {
        names: session.names().to_vec(),
        outcomes: (0..suite.len())
            .map(|i| serde_json::to_string(session.per_app_outcome(i).unwrap()).unwrap())
            .collect(),
        sweeps: (0..suite.len())
            .map(|i| serde_json::to_string(session.sweep(i).unwrap()).unwrap())
            .collect(),
        co: serde_json::to_string(&session.co_optimize(&MIX).unwrap()).unwrap(),
        population: {
            let profiles: Vec<autoreconf::MixProfile> = POPULATION
                .iter()
                .enumerate()
                .map(|(i, weights)| autoreconf::MixProfile {
                    name: format!("mix-{i}"),
                    weights: weights.to_vec(),
                })
                .collect();
            serde_json::to_string(
                &session.population(&profiles, POPULATION_TOLERANCE_PCT).unwrap(),
            )
            .unwrap()
        },
    }
}

#[test]
fn daemon_answers_are_byte_identical_under_contention() {
    // `AUTORECONF_SMOKE_STORE` pins (and keeps) the store directory, so CI
    // can run the store lifecycle against the store the daemon left behind
    let (store_dir, keep_store) = match std::env::var("AUTORECONF_SMOKE_STORE") {
        Ok(dir) => (PathBuf::from(dir), true),
        Err(_) => (scratch_dir("smoke"), false),
    };
    let store_was_fresh = !store_dir.exists();
    let expected = reference();

    let mut child = Command::new(env!("CARGO_BIN_EXE_autoreconf-serve"))
        .args([
            "--scale",
            "tiny",
            "--space",
            "dcache",
            "--store",
            store_dir.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn autoreconf-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read address line");
    let addr = line.trim().rsplit(' ').next().expect("address word").to_string();

    // -- cold + contended: 32 clients race every artifact at once ----------
    std::thread::scope(|scope| {
        for i in 0..CLIENTS {
            let addr = &addr;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                assert_eq!(
                    client.ping().expect("ping"),
                    autoreconf_service::PROTOCOL_VERSION
                );
                let w = i % expected.names.len();
                let name = &expected.names[w];
                assert_eq!(
                    client.optimize(name).expect("optimize"),
                    expected.outcomes[w],
                    "per-app optimum for {name} must be byte-identical to a local run"
                );
                assert_eq!(
                    client.sweep(name).expect("sweep"),
                    expected.sweeps[w],
                    "sweep for {name} must be byte-identical to a local run"
                );
                assert_eq!(
                    client.co_optimize(&MIX).expect("co-optimize"),
                    expected.co,
                    "co-optimization must be byte-identical to a local run"
                );
            });
        }
    });

    // -- warm: a fresh round of every query must execute no new guest code --
    let mut client = Client::connect(&addr).expect("connect warm client");
    let description = client.describe().expect("describe");
    assert_eq!(description.workloads, expected.names);
    assert_eq!(description.scale, "tiny");
    assert!(description.store, "the daemon was started with --store");
    let cold = client.counters().expect("counters after cold phase");
    if store_was_fresh {
        assert!(cold.guest_instructions > 0, "the cold phase must have executed guest code");
    }
    for (w, name) in expected.names.iter().enumerate() {
        assert_eq!(client.optimize(name).expect("warm optimize"), expected.outcomes[w]);
        assert_eq!(client.sweep(name).expect("warm sweep"), expected.sweeps[w]);
    }
    assert_eq!(client.co_optimize(&MIX).expect("warm co-optimize"), expected.co);
    let mixes: Vec<Vec<f64>> = POPULATION.iter().map(|m| m.to_vec()).collect();
    assert_eq!(
        client.population(&mixes, POPULATION_TOLERANCE_PCT).expect("population"),
        expected.population,
        "a population solve over the wire must be byte-identical to a local run"
    );
    let warm = client.counters().expect("counters after warm phase");
    assert_eq!(
        warm.guest_instructions, cold.guest_instructions,
        "warm queries must execute zero guest instructions"
    );
    assert!(warm.requests_served > cold.requests_served);

    client.shutdown().expect("shutdown");
    let status = child.wait().expect("daemon exit status");
    assert!(status.success(), "daemon must exit cleanly after Shutdown: {status:?}");

    if !keep_store {
        let _ = std::fs::remove_dir_all(&store_dir);
    }
}
