//! # autoreconf-service
//!
//! Client SDK for the autoreconf campaign service (the `autoreconf-serve`
//! daemon, also reachable as `experiments serve`).
//!
//! The daemon answers campaign queries over a length-prefixed JSON protocol
//! (one shared lazy store, claim/lease-deduplicated cold compute — see
//! [`autoreconf::service`] for the wire format and server).  This crate is
//! the thin blocking client: a [`Client`] wraps one TCP connection and
//! offers a typed helper per request.
//!
//! Campaign answers are returned as their *canonical JSON text* — the exact
//! bytes the server's serialiser produced — so callers can byte-compare
//! service answers against a local in-process run, which is how the smoke
//! test and the service benchmark assert end-to-end determinism.
//!
//! ```no_run
//! use autoreconf_service::Client;
//!
//! let mut client = Client::connect("127.0.0.1:7071").unwrap();
//! let description = client.describe().unwrap();
//! let outcome_json = client.optimize(&description.workloads[0]).unwrap();
//! println!("{outcome_json}");
//! ```

#![warn(missing_docs)]

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

pub use autoreconf::service::{
    read_frame, write_frame, Request, Response, ServiceCounters, PROTOCOL_VERSION,
};
pub use autoreconf::{SearchMode, SearchSpaceChoice};

/// What went wrong with a service call.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed (refused, reset, mid-frame EOF, …).
    Io(io::Error),
    /// The server answered [`Response::Error`] — the request was understood
    /// and rejected (unknown workload, bad mix, campaign failure).
    Server(String),
    /// The server answered something the protocol does not allow for this
    /// request — a version mismatch or a server bug.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "service connection error: {e}"),
            ClientError::Server(message) => write!(f, "service error: {message}"),
            ClientError::Protocol(message) => write!(f, "protocol violation: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Answer to [`Client::describe`]: what the daemon is serving.
#[derive(Clone, Debug, PartialEq)]
pub struct Description {
    /// Workload names, in suite order — the order mix weights apply in.
    pub workloads: Vec<String>,
    /// Problem scale of the served suite (`tiny`/`small`/`medium`/`large`).
    pub scale: String,
    /// Whether the daemon has an artifact store attached.
    pub store: bool,
}

/// One blocking connection to an `autoreconf-serve` daemon.
///
/// A client is cheap; hundreds can be open against one daemon.  Requests on
/// one client are strictly sequential (the protocol is request/response in
/// order); use one client per thread for concurrency.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Send one raw request and read its response — the escape hatch the
    /// typed helpers below are built on.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let body = serde_json::to_string(request)
            .map_err(|e| ClientError::Protocol(format!("cannot encode request: {e}")))?;
        write_frame(&mut self.stream, body.as_bytes())?;
        let frame = read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection without answering",
            ))
        })?;
        let text = std::str::from_utf8(&frame)
            .map_err(|e| ClientError::Protocol(format!("response is not UTF-8: {e}")))?;
        match serde_json::from_str::<Response>(text) {
            Ok(Response::Error { message }) => Err(ClientError::Server(message)),
            Ok(response) => Ok(response),
            Err(e) => Err(ClientError::Protocol(format!("undecodable response: {e} in {text}"))),
        }
    }

    fn unexpected<T>(request: &str, response: Response) -> Result<T, ClientError> {
        Err(ClientError::Protocol(format!("{request} answered with {response:?}")))
    }

    /// Health-check the daemon; returns its protocol version.
    pub fn ping(&mut self) -> Result<u32, ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong { protocol } => Ok(protocol),
            other => Self::unexpected("Ping", other),
        }
    }

    /// What suite the daemon serves.
    pub fn describe(&mut self) -> Result<Description, ClientError> {
        match self.request(&Request::Describe)? {
            Response::Describe { workloads, scale, store } => {
                Ok(Description { workloads, scale, store })
            }
            other => Self::unexpected("Describe", other),
        }
    }

    /// The named workload's per-application optimum, as canonical JSON.
    pub fn optimize(&mut self, workload: &str) -> Result<String, ClientError> {
        match self.request(&Request::Optimize { workload: workload.to_string() })? {
            Response::Outcome { json } => Ok(json),
            other => Self::unexpected("Optimize", other),
        }
    }

    /// The named workload's exhaustive d-cache sweep, as canonical JSON.
    pub fn sweep(&mut self, workload: &str) -> Result<String, ClientError> {
        match self.request(&Request::Sweep { workload: workload.to_string() })? {
            Response::Sweep { json } => Ok(json),
            other => Self::unexpected("Sweep", other),
        }
    }

    /// Co-optimize the served suite for a mix (one weight per workload, in
    /// [`Description::workloads`] order), as canonical JSON.
    pub fn co_optimize(&mut self, mix: &[f64]) -> Result<String, ClientError> {
        match self.request(&Request::CoOptimize { mix: mix.to_vec() })? {
            Response::CoOutcome { json } => Ok(json),
            other => Self::unexpected("CoOptimize", other),
        }
    }

    /// Batch co-optimize a population of tenant mixes (each: one weight per
    /// workload, in [`Description::workloads`] order) and get the Pareto
    /// frontier of configurations covering every tenant within
    /// `tolerance_pct` of its own optimum, as canonical JSON of the
    /// `PopulationOutcome`.
    pub fn population(
        &mut self,
        mixes: &[Vec<f64>],
        tolerance_pct: f64,
    ) -> Result<String, ClientError> {
        match self.request(&Request::Population { mixes: mixes.to_vec(), tolerance_pct })? {
            Response::Population { json } => Ok(json),
            other => Self::unexpected("Population", other),
        }
    }

    /// Search a shipped candidate space (`figure2` / `expanded`) for the
    /// named workload's measured optimum, exhaustively or through the
    /// pruned funnel, as canonical JSON of the `SearchOutcome`.  Both modes
    /// return the byte-identical optimum; `Pruned` walk-validates a small
    /// fraction of the space.
    pub fn search(
        &mut self,
        workload: &str,
        space: SearchSpaceChoice,
        mode: SearchMode,
    ) -> Result<String, ClientError> {
        match self.request(&Request::Search { workload: workload.to_string(), space, mode })? {
            Response::Search { json } => Ok(json),
            other => Self::unexpected("Search", other),
        }
    }

    /// The daemon's process-wide compute counters.
    pub fn counters(&mut self) -> Result<ServiceCounters, ClientError> {
        match self.request(&Request::Counters)? {
            Response::Counters { counters } => Ok(counters),
            other => Self::unexpected("Counters", other),
        }
    }

    /// Ask the daemon to exit.  Consumes the client — the connection is
    /// useless afterwards.
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Self::unexpected("Shutdown", other),
        }
    }
}
