//! # autoreconf-service
//!
//! Client SDK for the autoreconf campaign service (the `autoreconf-serve`
//! daemon, also reachable as `experiments serve`).
//!
//! The daemon answers campaign queries over a length-prefixed JSON protocol
//! (one shared lazy store, claim/lease-deduplicated cold compute — see
//! [`autoreconf::service`] for the wire format and server).  This crate is
//! the thin blocking client: a [`Client`] wraps one TCP connection and
//! offers a typed helper per request.
//!
//! Campaign answers are returned as their *canonical JSON text* — the exact
//! bytes the server's serialiser produced — so callers can byte-compare
//! service answers against a local in-process run, which is how the smoke
//! test and the service benchmark assert end-to-end determinism.
//!
//! ```no_run
//! use autoreconf_service::Client;
//!
//! let mut client = Client::connect("127.0.0.1:7071").unwrap();
//! let description = client.describe().unwrap();
//! let outcome_json = client.optimize(&description.workloads[0]).unwrap();
//! println!("{outcome_json}");
//! ```

#![warn(missing_docs)]

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

pub use autoreconf::service::{
    read_frame, write_frame, Request, Response, ServiceCounters, PROTOCOL_VERSION,
};
pub use autoreconf::{SearchMode, SearchSpaceChoice};

/// What went wrong with a service call.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed (refused, reset, mid-frame EOF, …).
    Io(io::Error),
    /// The server answered [`Response::Error`] — the request was understood
    /// and rejected (unknown workload, bad mix, campaign failure).
    Server(String),
    /// The server shed the request at its in-flight compute cap
    /// ([`Response::Overloaded`]) and it was still overloaded after every
    /// configured retry.  Safe to retry later — nothing was computed.
    Overloaded {
        /// Compute requests in flight at the server when ours was shed.
        in_flight: usize,
        /// The server's configured cap.
        limit: usize,
    },
    /// The configured per-request deadline or a socket timeout elapsed.
    /// The connection is re-established before any retry, so a timeout
    /// never desynchronises the frame stream.
    TimedOut {
        /// Time spent on the request (all attempts) before giving up.
        after: Duration,
    },
    /// The server answered something the protocol does not allow for this
    /// request — a version mismatch or a server bug.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "service connection error: {e}"),
            ClientError::Server(message) => write!(f, "service error: {message}"),
            ClientError::Overloaded { in_flight, limit } => {
                write!(f, "service overloaded: {in_flight} requests in flight (cap {limit})")
            }
            ClientError::TimedOut { after } => {
                write!(f, "service request timed out after {:.3}s", after.as_secs_f64())
            }
            ClientError::Protocol(message) => write!(f, "protocol violation: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut {
            ClientError::TimedOut { after: Duration::ZERO }
        } else {
            ClientError::Io(e)
        }
    }
}

/// Retry schedule for failed requests: exponential backoff with
/// decorrelated jitter ("sleep = rand(base, 3 × previous sleep), capped"),
/// which spreads a thundering herd of shed clients instead of
/// re-synchronising them.  Retrying is safe because every request is
/// idempotent — answers are content-addressed, so a duplicate request can
/// only re-read (or re-derive) the identical artifact, never double-apply.
///
/// Only *transport* failures and [`Response::Overloaded`] sheds are
/// retried; a [`ClientError::Server`] rejection is deterministic and
/// surfaces immediately.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries).
    pub max_attempts: u32,
    /// First backoff sleep.
    pub base_delay: Duration,
    /// Backoff cap.
    pub max_delay: Duration,
    /// Jitter seed — fixed default so test runs are reproducible; give
    /// each client its own seed in a real fleet.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries: one attempt, failures surface immediately (the default —
    /// existing callers keep their exact semantics).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// A sane production policy: 4 attempts, 10 ms base, 500 ms cap.
    pub fn standard() -> RetryPolicy {
        RetryPolicy { max_attempts: 4, ..RetryPolicy::none() }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Connection and request-robustness knobs for [`Client::connect_with`].
/// The default is maximally permissive — no timeouts, no deadline, no
/// retries — i.e. exactly the behavior of [`Client::connect`].
#[derive(Clone, Debug, Default)]
pub struct ClientConfig {
    /// Bound on TCP connection establishment (per resolved address).
    pub connect_timeout: Option<Duration>,
    /// Socket read timeout — bounds each blocking read, so a dead server
    /// surfaces as [`ClientError::TimedOut`] instead of a hang.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout.
    pub write_timeout: Option<Duration>,
    /// Overall per-request deadline, spanning every retry attempt.  When
    /// set, socket reads are additionally clamped to the time remaining.
    pub deadline: Option<Duration>,
    /// Retry schedule for transport failures and overload sheds.
    pub retry: RetryPolicy,
}

/// Answer to [`Client::describe`]: what the daemon is serving.
#[derive(Clone, Debug, PartialEq)]
pub struct Description {
    /// Workload names, in suite order — the order mix weights apply in.
    pub workloads: Vec<String>,
    /// Problem scale of the served suite (`tiny`/`small`/`medium`/`large`).
    pub scale: String,
    /// Whether the daemon has an artifact store attached.
    pub store: bool,
}

/// One blocking connection to an `autoreconf-serve` daemon.
///
/// A client is cheap; hundreds can be open against one daemon.  Requests on
/// one client are strictly sequential (the protocol is request/response in
/// order); use one client per thread for concurrency.
pub struct Client {
    stream: TcpStream,
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    rng: u64,
}

impl Client {
    /// Connect to a daemon with default (maximally permissive) settings —
    /// no timeouts, no retries.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect to a daemon with explicit timeout/deadline/retry settings.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = Self::open(&addrs, &config)?;
        let rng = config.retry.seed | 1; // xorshift must not start at 0
        Ok(Client { stream, addrs, config, rng })
    }

    /// Open a fresh socket to the first reachable resolved address, with
    /// the configured timeouts applied.
    fn open(addrs: &[SocketAddr], config: &ClientConfig) -> io::Result<TcpStream> {
        let mut last = None;
        for addr in addrs {
            let attempt = match config.connect_timeout {
                Some(timeout) => TcpStream::connect_timeout(addr, timeout),
                None => TcpStream::connect(addr),
            };
            match attempt {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(config.read_timeout)?;
                    stream.set_write_timeout(config.write_timeout)?;
                    return Ok(stream);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    fn next_jitter(&mut self) -> u64 {
        // xorshift64*: tiny, seedable, good enough for backoff jitter
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Send one raw request and read its response, applying the configured
    /// deadline and retry policy — the escape hatch the typed helpers below
    /// are built on.
    ///
    /// Transport failures ([`ClientError::Io`] / [`ClientError::TimedOut`])
    /// and overload sheds are retried per [`RetryPolicy`] on a *fresh*
    /// connection (a failed request may have left response bytes in flight;
    /// reusing the socket would desynchronise frames).  Server rejections
    /// and protocol violations are never retried.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let start = Instant::now();
        let attempts = self.config.retry.max_attempts.max(1);
        let mut sleep = self.config.retry.base_delay;
        let mut error = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                // decorrelated jitter: rand(base, 3 × previous), capped
                let base = self.config.retry.base_delay.as_millis() as u64;
                let ceiling = (sleep.as_millis() as u64).saturating_mul(3).max(base + 1);
                let jittered = base + self.next_jitter() % (ceiling - base);
                sleep = Duration::from_millis(jittered).min(self.config.retry.max_delay);
                if let Some(deadline) = self.config.deadline {
                    let elapsed = start.elapsed();
                    if elapsed + sleep >= deadline {
                        return Err(ClientError::TimedOut { after: elapsed });
                    }
                }
                std::thread::sleep(sleep);
                // transport failures poison the framing; reconnect for the
                // retry (also how we pick up a restarted daemon)
                if let Err(e) = Self::open(&self.addrs, &self.config).map(|s| self.stream = s) {
                    error = Some(ClientError::from(e));
                    continue;
                }
            }
            match self.request_once(request, start) {
                Ok(Response::Overloaded { in_flight, limit }) => {
                    error = Some(ClientError::Overloaded { in_flight, limit });
                }
                Ok(response) => return Ok(response),
                Err(e @ (ClientError::Io(_) | ClientError::TimedOut { .. })) => {
                    // stamp the true overall elapsed time on timeouts
                    error = Some(match e {
                        ClientError::TimedOut { .. } => {
                            ClientError::TimedOut { after: start.elapsed() }
                        }
                        other => other,
                    });
                }
                Err(e) => return Err(e), // Server / Protocol: deterministic
            }
        }
        Err(error.expect("at least one attempt ran"))
    }

    /// One attempt: write the request frame, read the response frame.
    fn request_once(
        &mut self,
        request: &Request,
        start: Instant,
    ) -> Result<Response, ClientError> {
        if let Some(deadline) = self.config.deadline {
            let remaining = deadline
                .checked_sub(start.elapsed())
                .ok_or(ClientError::TimedOut { after: start.elapsed() })?;
            // clamp socket waits to the time left (never to zero — that is
            // "no timeout" on some platforms and an error on others)
            let clamp = |configured: Option<Duration>| {
                Some(configured.unwrap_or(remaining).min(remaining).max(Duration::from_millis(1)))
            };
            self.stream.set_read_timeout(clamp(self.config.read_timeout))?;
            self.stream.set_write_timeout(clamp(self.config.write_timeout))?;
        }
        let body = serde_json::to_string(request)
            .map_err(|e| ClientError::Protocol(format!("cannot encode request: {e}")))?;
        write_frame(&mut self.stream, body.as_bytes())?;
        let frame = read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection without answering",
            ))
        })?;
        let text = std::str::from_utf8(&frame)
            .map_err(|e| ClientError::Protocol(format!("response is not UTF-8: {e}")))?;
        match serde_json::from_str::<Response>(text) {
            Ok(Response::Error { message }) => Err(ClientError::Server(message)),
            Ok(response) => Ok(response),
            Err(e) => Err(ClientError::Protocol(format!("undecodable response: {e} in {text}"))),
        }
    }

    fn unexpected<T>(request: &str, response: Response) -> Result<T, ClientError> {
        Err(ClientError::Protocol(format!("{request} answered with {response:?}")))
    }

    /// Health-check the daemon; returns its protocol version.
    pub fn ping(&mut self) -> Result<u32, ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong { protocol } => Ok(protocol),
            other => Self::unexpected("Ping", other),
        }
    }

    /// What suite the daemon serves.
    pub fn describe(&mut self) -> Result<Description, ClientError> {
        match self.request(&Request::Describe)? {
            Response::Describe { workloads, scale, store } => {
                Ok(Description { workloads, scale, store })
            }
            other => Self::unexpected("Describe", other),
        }
    }

    /// The named workload's per-application optimum, as canonical JSON.
    pub fn optimize(&mut self, workload: &str) -> Result<String, ClientError> {
        match self.request(&Request::Optimize { workload: workload.to_string() })? {
            Response::Outcome { json } => Ok(json),
            other => Self::unexpected("Optimize", other),
        }
    }

    /// The named workload's exhaustive d-cache sweep, as canonical JSON.
    pub fn sweep(&mut self, workload: &str) -> Result<String, ClientError> {
        match self.request(&Request::Sweep { workload: workload.to_string() })? {
            Response::Sweep { json } => Ok(json),
            other => Self::unexpected("Sweep", other),
        }
    }

    /// Co-optimize the served suite for a mix (one weight per workload, in
    /// [`Description::workloads`] order), as canonical JSON.
    pub fn co_optimize(&mut self, mix: &[f64]) -> Result<String, ClientError> {
        match self.request(&Request::CoOptimize { mix: mix.to_vec() })? {
            Response::CoOutcome { json } => Ok(json),
            other => Self::unexpected("CoOptimize", other),
        }
    }

    /// Batch co-optimize a population of tenant mixes (each: one weight per
    /// workload, in [`Description::workloads`] order) and get the Pareto
    /// frontier of configurations covering every tenant within
    /// `tolerance_pct` of its own optimum, as canonical JSON of the
    /// `PopulationOutcome`.
    pub fn population(
        &mut self,
        mixes: &[Vec<f64>],
        tolerance_pct: f64,
    ) -> Result<String, ClientError> {
        match self.request(&Request::Population { mixes: mixes.to_vec(), tolerance_pct })? {
            Response::Population { json } => Ok(json),
            other => Self::unexpected("Population", other),
        }
    }

    /// Search a shipped candidate space (`figure2` / `expanded`) for the
    /// named workload's measured optimum, exhaustively or through the
    /// pruned funnel, as canonical JSON of the `SearchOutcome`.  Both modes
    /// return the byte-identical optimum; `Pruned` walk-validates a small
    /// fraction of the space.
    pub fn search(
        &mut self,
        workload: &str,
        space: SearchSpaceChoice,
        mode: SearchMode,
    ) -> Result<String, ClientError> {
        match self.request(&Request::Search { workload: workload.to_string(), space, mode })? {
            Response::Search { json } => Ok(json),
            other => Self::unexpected("Search", other),
        }
    }

    /// The daemon's process-wide compute counters.
    pub fn counters(&mut self) -> Result<ServiceCounters, ClientError> {
        match self.request(&Request::Counters)? {
            Response::Counters { counters } => Ok(counters),
            other => Self::unexpected("Counters", other),
        }
    }

    /// Ask the daemon to exit.  Consumes the client — the connection is
    /// useless afterwards.
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Self::unexpected("Shutdown", other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn answer_one(stream: &mut TcpStream, response: &Response) {
        let frame = read_frame(stream).unwrap().expect("request frame");
        let _: Request = serde_json::from_str(std::str::from_utf8(&frame).unwrap()).unwrap();
        let body = serde_json::to_string(response).unwrap();
        write_frame(stream, body.as_bytes()).unwrap();
    }

    /// The retry path end to end: the first connection dies without an
    /// answer; the policy reconnects and the request succeeds.  Safe to
    /// retry blindly because requests are idempotent.
    #[test]
    fn retries_reconnect_through_a_flaky_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (first, _) = listener.accept().unwrap();
            drop(first); // simulated crash before answering
            let (mut second, _) = listener.accept().unwrap();
            answer_one(&mut second, &Response::Pong { protocol: PROTOCOL_VERSION });
        });
        let mut client = Client::connect_with(
            addr,
            ClientConfig { retry: RetryPolicy::standard(), ..ClientConfig::default() },
        )
        .unwrap();
        assert_eq!(client.ping().unwrap(), PROTOCOL_VERSION);
        server.join().unwrap();
    }

    /// A server that accepts but never answers is bounded by the read
    /// timeout + per-request deadline instead of hanging the caller
    /// forever.
    #[test]
    fn deadline_bounds_a_silent_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(1500)); // never answers
            drop(stream);
        });
        let start = Instant::now();
        let mut client = Client::connect_with(
            addr,
            ClientConfig {
                read_timeout: Some(Duration::from_millis(100)),
                deadline: Some(Duration::from_millis(400)),
                retry: RetryPolicy::standard(),
                ..ClientConfig::default()
            },
        )
        .unwrap();
        match client.ping() {
            Err(ClientError::TimedOut { after }) => {
                assert!(after >= Duration::from_millis(100), "{after:?}")
            }
            other => panic!("expected a timeout, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_millis(1200), "deadline not honoured");
        server.join().unwrap();
    }

    /// An overload shed that persists through every retry surfaces as the
    /// typed [`ClientError::Overloaded`], not a protocol error.
    #[test]
    fn exhausted_overload_retries_surface_typed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // initial connection + one per retry, each shedding the request
            for _ in 0..3 {
                let (mut stream, _) = listener.accept().unwrap();
                answer_one(&mut stream, &Response::Overloaded { in_flight: 7, limit: 4 });
            }
        });
        let mut client = Client::connect_with(
            addr,
            ClientConfig {
                retry: RetryPolicy {
                    max_attempts: 3,
                    base_delay: Duration::from_millis(1),
                    max_delay: Duration::from_millis(5),
                    ..RetryPolicy::none()
                },
                ..ClientConfig::default()
            },
        )
        .unwrap();
        match client.request(&Request::Optimize { workload: "BLASTN".to_string() }) {
            Err(ClientError::Overloaded { in_flight: 7, limit: 4 }) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        server.join().unwrap();
    }

    /// With the default config (no retries), a server rejection surfaces
    /// once and immediately — retrying a deterministic error is useless.
    #[test]
    fn server_rejections_are_not_retried() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            answer_one(&mut stream, &Response::Error { message: "unknown workload `X`".into() });
            // a retry would show up as a second request or connection; the
            // listener going out of scope right after proves there was none
        });
        let mut client = Client::connect_with(
            addr,
            ClientConfig { retry: RetryPolicy::standard(), ..ClientConfig::default() },
        )
        .unwrap();
        match client.optimize("X") {
            Err(ClientError::Server(message)) => assert!(message.contains("unknown workload")),
            other => panic!("expected a server rejection, got {other:?}"),
        }
        server.join().unwrap();
    }
}
