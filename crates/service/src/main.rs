//! `autoreconf-serve` — the campaign-as-a-service daemon.
//!
//! Binds a TCP listener, prints the bound address on stdout (machine
//! parseable — port 0 picks a free port), and serves campaign queries over
//! one shared artifact store until a client sends `Shutdown`.
//!
//! ```text
//! autoreconf-serve [--addr HOST:PORT] [--scale tiny|small|medium|large] \
//!     [--threads N] [--store DIR] [--doctor] [--max-inflight N] \
//!     [--io-timeout-ms N]
//! ```
//!
//! `--store DIR` defaults to `$AUTORECONF_STORE`; with neither, every query
//! is answered by computing (still deduplicated in-process).  `--doctor`
//! runs a repair pass over the store before serving; `--max-inflight` caps
//! concurrently computing requests (0 = unbounded — excess load is shed
//! with `Overloaded`); `--io-timeout-ms` bounds how long an idle or stalled
//! client may hold a connection thread (0 = no timeout).  Every malformed
//! flag is a hard error — never a silent fallback.

use std::io::Write;

use autoreconf::experiments::ExperimentOptions;
use autoreconf::service::{Server, ServerConfig};
use autoreconf::{ArtifactStore, ParameterSpace};
use workloads::Scale;

const USAGE: &str = "usage: autoreconf-serve [--addr HOST:PORT] \
     [--scale tiny|small|medium|large] [--threads N] [--space paper|dcache] \
     [--store DIR] [--doctor] [--max-inflight N] [--io-timeout-ms N]\n\
\n\
--addr defaults to 127.0.0.1:0 (a free port; the bound address is printed \
on stdout). --store defaults to $AUTORECONF_STORE. --space dcache restricts \
the optimization to the d-cache geometry variables (fast smoke runs). \
--doctor repairs the store before serving. --max-inflight caps concurrently \
computing requests (0 = unbounded); excess load is shed with Overloaded. \
--io-timeout-ms bounds idle/stalled connections (0 = none).";

/// Parse the `--space` flag: the paper's full 52-variable space or the
/// restricted d-cache geometry study space.
fn parse_space(name: &str) -> Result<ParameterSpace, String> {
    match name.trim().to_ascii_lowercase().as_str() {
        "paper" | "full" => Ok(ParameterSpace::paper()),
        "dcache" => Ok(ParameterSpace::dcache_geometry()),
        other => Err(format!("unknown space `{other}` (expected paper or dcache)")),
    }
}

fn parse_args(args: &[String]) -> Result<Option<ServerConfig>, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        options: ExperimentOptions::default(),
        space: ParameterSpace::paper(),
        store: None,
        ..ServerConfig::default()
    };
    let mut store_dir: Option<String> = None;
    let mut iter = args.iter().peekable();
    let flag_value = |flag: &str,
                         iter: &mut std::iter::Peekable<std::slice::Iter<'_, String>>|
     -> Result<String, String> {
        match iter.peek() {
            Some(v) if !v.starts_with("--") => Ok(iter.next().unwrap().clone()),
            _ => Err(format!("{flag} requires a value")),
        }
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => config.addr = flag_value("--addr", &mut iter)?,
            "--scale" => {
                let value = flag_value("--scale", &mut iter)?;
                config.options.scale = Scale::parse(&value).map_err(|e| e.to_string())?;
            }
            "--threads" => {
                let value = flag_value("--threads", &mut iter)?;
                config.options.threads = value.trim().parse().map_err(|_| {
                    format!("invalid --threads value `{value}` (expected a number; 0 = all cores)")
                })?;
            }
            "--space" => config.space = parse_space(&flag_value("--space", &mut iter)?)?,
            "--store" => store_dir = Some(flag_value("--store", &mut iter)?),
            "--doctor" => config.doctor_on_start = true,
            "--max-inflight" => {
                let value = flag_value("--max-inflight", &mut iter)?;
                config.max_in_flight = value.trim().parse().map_err(|_| {
                    format!("invalid --max-inflight value `{value}` (expected a number; 0 = unbounded)")
                })?;
            }
            "--io-timeout-ms" => {
                let value = flag_value("--io-timeout-ms", &mut iter)?;
                let ms: u64 = value.trim().parse().map_err(|_| {
                    format!("invalid --io-timeout-ms value `{value}` (expected milliseconds; 0 = none)")
                })?;
                config.io_timeout =
                    (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    config.store = match store_dir {
        Some(dir) => Some(
            ArtifactStore::open(&dir)
                .map_err(|e| format!("cannot open artifact store `{dir}`: {e}"))?,
        ),
        None => ArtifactStore::from_env(),
    };
    Ok(Some(config))
}

fn main() {
    // fail fast on a malformed AUTORECONF_THREADS instead of panicking in a
    // worker-pool setup deep inside the first cold query
    if let Err(message) = autoreconf::campaign::threads_env() {
        eprintln!("error: {message}");
        std::process::exit(2);
    }
    // same fail-fast treatment for the fault-injection and lease-TTL
    // overrides: a typo must not silently disable a crash schedule or run
    // a crash test at the 10 s default TTL
    if let Err(message) = autoreconf::faults::install_from_env() {
        eprintln!("error: {message}");
        std::process::exit(2);
    }
    if let Err(message) = autoreconf::store::lease_ttl_env() {
        eprintln!("error: {message}");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(Some(config)) => config,
        Ok(None) => {
            println!("{USAGE}");
            return;
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind listener: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.local_addr().expect("bound listener has an address");
    println!("autoreconf-serve listening on {addr}");
    std::io::stdout().flush().expect("flush address line");
    if let Err(e) = server.run() {
        eprintln!("error: server failed: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Option<ServerConfig>, String> {
        parse_args(&words.iter().map(|w| w.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_and_flags_parse() {
        let config = parse(&[]).unwrap().unwrap();
        assert_eq!(config.addr, "127.0.0.1:0");
        assert_eq!(config.options.scale, Scale::Small);
        let config = parse(&["--addr", "0.0.0.0:7071", "--scale", "tiny", "--threads", "2"])
            .unwrap()
            .unwrap();
        assert_eq!(config.addr, "0.0.0.0:7071");
        assert_eq!(config.options.scale, Scale::Tiny);
        assert_eq!(config.options.threads, 2);
        assert!(parse(&["--help"]).unwrap().is_none());
    }

    #[test]
    fn malformed_flags_are_loud() {
        assert!(parse(&["--scale", "big"]).unwrap_err().contains("unknown scale"));
        assert!(parse(&["--threads", "all"]).unwrap_err().contains("invalid --threads"));
        assert!(parse(&["--addr"]).unwrap_err().contains("requires a value"));
        assert!(parse(&["--space", "everything"]).unwrap_err().contains("unknown space"));
        assert!(parse(&["--frobnicate"]).unwrap_err().contains("unknown argument"));
        assert!(parse(&["--max-inflight", "many"]).unwrap_err().contains("--max-inflight"));
        assert!(parse(&["--io-timeout-ms", "soon"]).unwrap_err().contains("--io-timeout-ms"));
    }

    #[test]
    fn hardening_flags_parse() {
        let config = parse(&[]).unwrap().unwrap();
        assert!(!config.doctor_on_start);
        assert_eq!(config.max_in_flight, autoreconf::service::DEFAULT_MAX_IN_FLIGHT);
        assert_eq!(config.io_timeout, Some(autoreconf::service::DEFAULT_IO_TIMEOUT));
        let config =
            parse(&["--doctor", "--max-inflight", "8", "--io-timeout-ms", "2500"]).unwrap().unwrap();
        assert!(config.doctor_on_start);
        assert_eq!(config.max_in_flight, 8);
        assert_eq!(config.io_timeout, Some(std::time::Duration::from_millis(2500)));
        let unbounded = parse(&["--max-inflight", "0", "--io-timeout-ms", "0"]).unwrap().unwrap();
        assert_eq!(unbounded.max_in_flight, 0);
        assert_eq!(unbounded.io_timeout, None);
    }

    #[test]
    fn space_flag_selects_the_study_space() {
        let config = parse(&["--space", "dcache"]).unwrap().unwrap();
        assert!(config.space.len() < ParameterSpace::paper().len());
        let full = parse(&["--space", "paper"]).unwrap().unwrap();
        assert_eq!(full.space.len(), ParameterSpace::paper().len());
    }
}
