//! # liquid-autoreconf
//!
//! A Rust reproduction of *"Automatic Application-Specific Microarchitecture
//! Reconfiguration"* (Padmanabhan, Cytron, Chamberlain, Lockwood;
//! IPDPS 2006): per-application tuning of a LEON2-like soft-core processor by
//! measuring one-at-a-time parameter perturbations and solving a constrained
//! Binary Integer Nonlinear Program.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`isa`] (`leon-isa`) — the guest ISA, assembler and program images;
//! * [`sim`] (`leon-sim`) — the cycle-level, fully parameterised simulator;
//! * [`fpga`] (`fpga-model`) — the analytical LUT/BRAM synthesis model;
//! * [`solver`] (`binlp`) — the constrained BINLP solver;
//! * [`apps`] (`workloads`) — the BLASTN / DRR / FRAG / Arith benchmarks;
//! * [`tuner`] (`autoreconf`) — the automatic reconfiguration pipeline and
//!   the experiment drivers that regenerate the paper's figures.
//!
//! ```no_run
//! use liquid_autoreconf::prelude::*;
//!
//! let tool = AutoReconfigurator::new().with_weights(Weights::runtime_optimized());
//! let outcome = tool.optimize(&Blastn::scaled(Scale::Small)).unwrap();
//! println!("{}: {:.2}% faster", outcome.workload, outcome.runtime_gain_pct());
//! ```

#![warn(missing_docs)]

pub use autoreconf as tuner;
pub use binlp as solver;
pub use fpga_model as fpga;
pub use leon_isa as isa;
pub use leon_sim as sim;
pub use workloads as apps;

/// Convenient re-exports of the types most programs need.
pub mod prelude {
    pub use autoreconf::{
        ArtifactStore, AutoReconfigurator, Campaign, CampaignResult, CampaignSession, CoOutcome,
        ConstraintForm, FormulationOptions, MeasurementOptions, Outcome, ParameterSpace,
        SessionCounters, TraceSet, Weights,
    };
    pub use fpga_model::{Device, SynthesisModel};
    pub use leon_isa::{Asm, Program, Reg};
    pub use leon_sim::{simulate, LeonConfig, Multiplier, ReplacementPolicy};
    pub use workloads::{run_verified, Arith, Blastn, Drr, Frag, Scale, Workload};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_entry_points() {
        use crate::prelude::*;
        let _ = AutoReconfigurator::new();
        let _ = LeonConfig::base();
        let _ = SynthesisModel::default();
        let _ = Arith::scaled(Scale::Tiny);
    }
}
