//! Minimal in-tree `proptest` replacement.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest the workspace's property tests use: [`Strategy`]
//! with `prop_map` / `prop_flat_map`, range and tuple strategies, `Just`,
//! `any`, `prop_oneof!`, `proptest::collection::vec`, `proptest::option::of`
//! and the [`proptest!`] / `prop_assert*` macros.
//!
//! Generation is pseudo-random but fully deterministic: every test function
//! runs `ProptestConfig::cases` cases from a fixed seed, so failures
//! reproduce exactly.  There is no shrinking — a failing case panics with
//! the generated value's context via the normal assert message.

use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `proptest! { #![proptest_config(...)] ... }`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic xorshift64* generator.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator from a seed (0 is mapped to a fixed constant).
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..bound` (`bound` of 0 yields 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A boxed, type-erased strategy (what [`prop_oneof!`] unions over).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Box a strategy (helper used by [`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
    Box::new(strategy)
}

/// Uniform choice between several strategies of the same value type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// numeric ranges
// ---------------------------------------------------------------------------

/// Integers that range strategies can sample.
pub trait SampleUniform: Copy {
    /// Uniform sample from `lo..=hi` (inclusive both ends).
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                if lo >= hi {
                    return lo;
                }
                let span = (hi as i128) - (lo as i128) + 1;
                let offset = (rng.next_u64() as u128 % span as u128) as i128;
                ((lo as i128) + offset) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform + PartialOrd + std::ops::Sub<Output = T> + One> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "empty range strategy");
        T::sample_inclusive(self.start, self.end - T::one(), rng)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Unit value for exclusive-range sampling.
pub trait One {
    /// The multiplicative identity.
    fn one() -> Self;
}

macro_rules! impl_one {
    ($($t:ty),*) => {$(impl One for $t { fn one() -> Self { 1 } })*};
}

impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

// ---------------------------------------------------------------------------
// tuples, any, collections
// ---------------------------------------------------------------------------

macro_rules! impl_tuple {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple!(S0.0);
impl_tuple!(S0.0, S1.1);
impl_tuple!(S0.0, S1.1, S2.2);
impl_tuple!(S0.0, S1.1, S2.2, S3.3);
impl_tuple!(S0.0, S1.1, S2.2, S3.3, S4.4);
impl_tuple!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);

/// Types with a canonical whole-domain strategy (used by [`any`]).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over a type's whole domain: `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive length range for generated collections.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi: r.end.saturating_sub(1).max(r.start) }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// macros
// ---------------------------------------------------------------------------

/// Uniform choice between strategies (weights are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::boxed($strategy)),+])
    };
}

/// Assert within a property (no shrinking; behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

/// Assert equality within a property (behaves like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

/// Assert inequality within a property (behaves like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($config:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            // call sites write `#[test]` themselves; re-emit their attributes
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                // Seed from the test name so each property explores its own
                // deterministic sequence.
                let __seed = ::std::stringify!($name)
                    .bytes()
                    .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
                    });
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::new(__seed ^ ((__case as u64 + 1) << 32));
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Define property tests: `proptest! { #[test] fn p(x in strategy) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ::std::default::Default::default(); $($rest)* }
    };
}

/// The names property tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(5u8..10), &mut rng);
            assert!((5..10).contains(&v));
            let w = crate::Strategy::generate(&(-3i32..=3), &mut rng);
            assert!((-3..=3).contains(&w));
            let f = crate::Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = |seed| {
            let mut rng = crate::TestRng::new(seed);
            (0..32).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_machinery_works(x in 0usize..100, pair in (any::<bool>(), Just(3u32))) {
            prop_assert!(x < 100);
            prop_assert_eq!(pair.1, 3);
        }

        #[test]
        fn oneof_and_collections(v in crate::collection::vec(prop_oneof![0u32..5, 10u32..15], 0..6)) {
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5 || (10..15).contains(&x)));
        }
    }
}
