//! Minimal in-tree `rand` replacement.
//!
//! The build environment has no crates.io access.  The workloads only need a
//! deterministic, seedable generator with `gen` and `gen_range`, so that is
//! all this crate provides.  [`rngs::SmallRng`] is an xorshift64* generator:
//! high-quality enough for synthetic benchmark inputs and stable across
//! platforms and releases, which the experiments rely on for reproducible
//! guest programs.

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw generator interface.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draw a value uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn RngCore) -> $t { rng.next_u64() as $t }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

fn sample_inclusive_u128(lo: i128, hi: i128, rng: &mut dyn RngCore) -> i128 {
    if lo >= hi {
        return lo;
    }
    let span = (hi - lo + 1) as u128;
    lo + (rng.next_u64() as u128 % span) as i128
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                sample_inclusive_u128(self.start as i128, self.end as i128 - 1, rng) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                sample_inclusive_u128(*self.start() as i128, *self.end() as i128, rng) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64*).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // splitmix64 the seed so that nearby seeds diverge immediately
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            SmallRng { state: if z == 0 { 1 } else { z } }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..16).map(|_| rng.gen_range(0u32..1000)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!((64..=128).contains(&rng.gen_range(64u32..=128)));
            assert!((0..4).contains(&rng.gen_range(0u8..4)));
        }
        let _: u32 = rng.gen();
        let _: bool = rng.gen();
    }
}
