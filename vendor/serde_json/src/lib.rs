//! Minimal in-tree `serde_json` replacement.
//!
//! Provides `to_string`, `to_string_pretty`, `to_value` and `from_str` over
//! the [`serde::Value`] data model, with a hand-written JSON printer and
//! recursive-descent parser.  Floats print via Rust's shortest round-trip
//! formatting, so `serialize -> parse` preserves every `f64` bit-exactly.

pub use serde::Value;

/// JSON serialization/deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a human-readable, 2-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value(input)?;
    Ok(T::from_value(&value)?)
}

/// Parse a JSON string into a [`Value`] tree.
pub fn parse_value(input: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// printer
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest representation that parses back
                // to the identical f64 (and always contains `.` or `e`).
                out.push_str(&format!("{f:?}"));
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's `null`.
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at byte {}", byte as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| Error("eof in escape".into()))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("eof in \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by our printer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in ["null", "true", "false", "0", "-17", "3.25", "\"hi\\nthere\""] {
            let v = parse_value(json).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, json);
        }
    }

    #[test]
    fn float_bits_survive_round_trip() {
        for f in [0.1f64, 1.0 / 3.0, 1e-300, 123456.789, -0.0] {
            let printed = to_string(&f).unwrap();
            let back: f64 = from_str(&printed).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{printed}");
        }
    }

    #[test]
    fn nested_structures_parse() {
        let v = parse_value(r#"{ "a": [1, 2, {"b": null}], "c": "x" }"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn pretty_output_contains_indent() {
        let v = parse_value(r#"{"a":[1]}"#).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, Some(2), 0);
        assert!(out.contains("\n  \"a\""));
    }
}
