//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the in-tree minimal
//! serde.
//!
//! The build environment has no crates.io access, so this macro parses the
//! derive input token stream by hand (no `syn`/`quote`).  It supports the
//! shapes the workspace actually uses:
//!
//! * structs with named fields;
//! * tuple structs (newtype structs serialize transparently);
//! * unit structs;
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde's default representation).
//!
//! Generics are not supported — no type in the workspace needs them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields (count only).
    Tuple(usize),
    /// No fields.
    Unit,
}

#[derive(Debug)]
struct Input {
    name: String,
    is_enum: bool,
    /// For structs: one entry named "". For enums: one entry per variant.
    variants: Vec<(String, Fields)>,
}

/// Split a token list into chunks separated by top-level commas, dropping
/// leading attributes (`#[...]`, including doc comments) from each chunk.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    // Angle brackets are bare puncts, not token groups, so `<`/`>` depth must
    // be tracked by hand or commas inside `BTreeMap<K, V>` would split fields.
    let mut angle_depth = 0i32;
    for tt in tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                current.push(tt.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                current.push(tt.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !current.is_empty() {
                    chunks.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(tt.clone()),
        }
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Remove leading attributes and visibility qualifiers from a token chunk.
fn strip_attrs_and_vis(chunk: &[TokenTree]) -> Vec<TokenTree> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // attribute: `#` followed by a bracketed group
                i += 1;
                if matches!(&chunk.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` / `pub(super)` etc.
                if matches!(&chunk.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            other => {
                out.push(other.clone());
                i += 1;
            }
        }
    }
    out
}

/// Parse the fields of a brace-delimited body (named fields).
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    split_commas(tokens)
        .iter()
        .filter_map(|chunk| {
            let clean = strip_attrs_and_vis(chunk);
            match clean.first() {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

/// Parse the fields of a parenthesised body (tuple fields): count the
/// non-empty comma chunks.
fn parse_tuple_fields(tokens: &[TokenTree]) -> usize {
    split_commas(tokens)
        .iter()
        .filter(|chunk| !strip_attrs_and_vis(chunk).is_empty())
        .count()
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let clean = strip_attrs_and_vis(&tokens);
    let mut iter = clean.into_iter().peekable();

    let mut is_enum = false;
    loop {
        match iter.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                is_enum = true;
                break;
            }
            Some(_) => continue,
            None => panic!("serde_derive: expected `struct` or `enum`"),
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };

    // Reject generics outright: nothing in the workspace derives on a
    // generic type, and silently mis-compiling one would be worse.
    if matches!(&iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by the in-tree serde stub");
    }

    let body = iter.find_map(|tt| match tt {
        TokenTree::Group(g) if g.delimiter() != Delimiter::Bracket => Some(g),
        _ => None,
    });

    if is_enum {
        let body = body.expect("serde_derive: enum body");
        let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
        let mut variants = Vec::new();
        for chunk in split_commas(&body_tokens) {
            let clean = strip_attrs_and_vis(&chunk);
            let mut it = clean.into_iter();
            let vname = match it.next() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => continue,
            };
            let fields = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_fields(&toks))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(parse_tuple_fields(&toks))
                }
                _ => Fields::Unit,
            };
            variants.push((vname, fields));
        }
        Input { name, is_enum: true, variants }
    } else {
        let fields = match body {
            Some(g) if g.delimiter() == Delimiter::Brace => {
                let toks: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Named(parse_named_fields(&toks))
            }
            Some(g) if g.delimiter() == Delimiter::Parenthesis => {
                let toks: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Tuple(parse_tuple_fields(&toks))
            }
            _ => Fields::Unit,
        };
        Input { name, is_enum: false, variants: vec![(String::new(), fields)] }
    }
}

fn ser_named(fields: &[String], path: &str, access: &str) -> String {
    // `access` is a prefix such as `self.` (structs) or `` (bound variant
    // fields); `path` is unused for structs.
    let _ = path;
    let mut entries = String::new();
    for f in fields {
        entries.push_str(&format!(
            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&{access}{f})),"
        ));
    }
    format!("::serde::Value::Object(::std::vec![{entries}])")
}

fn de_named(ty_and_variant: &str, fields: &[String], obj: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        inits.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(::serde::field({obj}, \"{f}\")?)?,"
        ));
    }
    format!("{ty_and_variant} {{ {inits} }}")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = if !input.is_enum {
        match &input.variants[0].1 {
            Fields::Named(fields) => ser_named(fields, "", "self."),
            Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Fields::Tuple(n) => {
                let items: Vec<String> =
                    (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(","))
            }
            Fields::Unit => format!("::serde::Value::String(::std::string::String::from(\"{name}\"))"),
        }
    } else {
        let mut arms = String::new();
        for (vname, fields) in &input.variants {
            match fields {
                Fields::Unit => arms.push_str(&format!(
                    "{name}::{vname} => ::serde::Value::String(::std::string::String::from(\"{vname}\")),"
                )),
                Fields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                    let inner = if *n == 1 {
                        "::serde::Serialize::to_value(__f0)".to_string()
                    } else {
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!("::serde::Value::Array(::std::vec![{}])", items.join(","))
                    };
                    arms.push_str(&format!(
                        "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), {inner})]),",
                        binds.join(",")
                    ));
                }
                Fields::Named(fnames) => {
                    let binds = fnames.join(",");
                    let inner = ser_named(fnames, "", "*");
                    arms.push_str(&format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), {inner})]),"
                    ));
                }
            }
        }
        format!("match self {{ {arms} }}")
    };

    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse().expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = if !input.is_enum {
        match &input.variants[0].1 {
            Fields::Named(fields) => {
                let ctor = de_named(name, fields, "__obj");
                format!(
                    "let __obj = __value.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}\"))?;\n\
                     ::std::result::Result::Ok({ctor})"
                )
            }
            Fields::Tuple(1) => format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
            ),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "let __items = __value.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}\"))?;\n\
                     if __items.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::expected(\"{n}-element array\", \"{name}\")); }}\n\
                     ::std::result::Result::Ok({name}({}))",
                    items.join(",")
                )
            }
            Fields::Unit => format!("::std::result::Result::Ok({name})"),
        }
    } else {
        let mut unit_arms = String::new();
        let mut data_arms = String::new();
        for (vname, fields) in &input.variants {
            match fields {
                Fields::Unit => unit_arms.push_str(&format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                )),
                Fields::Tuple(n) => {
                    let ctor = if *n == 1 {
                        format!("{name}::{vname}(::serde::Deserialize::from_value(__inner)?)")
                    } else {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        format!(
                            "{{ let __items = __inner.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}::{vname}\"))?;\n\
                               if __items.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::expected(\"{n}-element array\", \"{name}::{vname}\")); }}\n\
                               {name}::{vname}({}) }}",
                            items.join(",")
                        )
                    };
                    data_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({ctor}),"
                    ));
                }
                Fields::Named(fnames) => {
                    let ctor = de_named(&format!("{name}::{vname}"), fnames, "__vobj");
                    data_arms.push_str(&format!(
                        "\"{vname}\" => {{ let __vobj = __inner.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}::{vname}\"))?; ::std::result::Result::Ok({ctor}) }},"
                    ));
                }
            }
        }
        format!(
            "match __value {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                     {unit_arms}\n\
                     __other => ::std::result::Result::Err(::serde::Error(::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                     let (__tag, __inner) = &__entries[0];\n\
                     match __tag.as_str() {{\n\
                         {data_arms}\n\
                         __other => ::std::result::Result::Err(::serde::Error(::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::expected(\"variant string or single-key object\", \"{name}\")),\n\
             }}"
        )
    };

    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    out.parse().expect("serde_derive: generated Deserialize impl must parse")
}
