//! Minimal in-tree `criterion` replacement.
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice of the Criterion API the bench targets use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!`) with a simple wall-clock sampler.
//!
//! On [`BenchmarkGroup::finish`] every group writes its results to
//! `BENCH_<group>.json` (group-name slashes become underscores) in
//! `$BENCH_JSON_DIR` (default: the current directory), so speedups are
//! tracked as machine-readable artifacts across runs.
//!
//! Environment knobs:
//!
//! * `BENCH_JSON_DIR` — output directory for the JSON artifacts;
//! * `BENCH_SMOKE=1` — one measured sample per benchmark (CI smoke runs).

use std::fmt::Display;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], as in real criterion.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        eprintln!("benchmark group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            results: Vec::new(),
            pending_throughput: None,
        }
    }

    /// Single free-standing benchmark (rarely used; mirrors criterion).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(id);
        group.bench_function("bench", f);
        group.finish();
        self
    }
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Just the parameter, e.g. `BenchmarkId::from_parameter(way_kb)`.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Accepted by `bench_function`: a plain string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Throughput annotation (recorded in the JSON artifact).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

struct BenchResult {
    name: String,
    mean_ns: f64,
    min_ns: f64,
    samples: usize,
    throughput: Option<Throughput>,
}

/// A group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    results: Vec<BenchResult>,
    pending_throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Target number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upper bound on the measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        // applies to the next registered benchmark, criterion-style
        self.pending_throughput = Some(t);
        self
    }

    /// Run and record one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let name = id.into_id();
        let samples = self.run(&mut f);
        self.record(name, samples);
        self
    }

    /// Run and record one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = id.into_id();
        let samples = self.run(&mut |b: &mut Bencher| f(b, input));
        self.record(name, samples);
        self
    }

    fn run(&self, f: &mut dyn FnMut(&mut Bencher)) -> Vec<f64> {
        let smoke = std::env::var("BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
        let target_samples = if smoke { 1 } else { self.sample_size };
        let budget = if smoke { Duration::from_secs(1) } else { self.measurement_time };

        // one untimed warmup iteration
        let mut warmup = Bencher { elapsed: Duration::ZERO, iterations: 0 };
        f(&mut warmup);

        let mut samples = Vec::with_capacity(target_samples);
        let started = Instant::now();
        while samples.len() < target_samples {
            let mut bencher = Bencher { elapsed: Duration::ZERO, iterations: 0 };
            f(&mut bencher);
            if bencher.iterations > 0 {
                samples.push(bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64);
            }
            if started.elapsed() > budget && !samples.is_empty() {
                break;
            }
        }
        samples
    }

    fn record(&mut self, name: String, samples: Vec<f64>) {
        let count = samples.len().max(1);
        let mean = samples.iter().sum::<f64>() / count as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let min = if min.is_finite() { min } else { 0.0 };
        eprintln!("  {name:<60} mean {:>12.1} ns  min {:>12.1} ns  ({count} samples)", mean, min);
        self.results.push(BenchResult {
            name,
            mean_ns: mean,
            min_ns: min,
            samples: samples.len(),
            throughput: self.pending_throughput.take(),
        });
    }

    /// Write the group's `BENCH_<group>.json` artifact.
    pub fn finish(self) {
        let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_string());
        let safe: String = self
            .name
            .chars()
            .map(|c| if c.is_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        let path = format!("{dir}/BENCH_{safe}.json");
        let mut body = String::new();
        let _ = writeln!(body, "{{");
        let _ = writeln!(body, "  \"group\": \"{}\",", self.name.replace('"', "'"));
        let _ = writeln!(body, "  \"benchmarks\": [");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            let throughput = match r.throughput {
                Some(Throughput::Elements(n)) => format!(", \"elements\": {n}"),
                Some(Throughput::Bytes(n)) => format!(", \"bytes\": {n}"),
                None => String::new(),
            };
            let _ = writeln!(
                body,
                "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}{}}}{comma}",
                r.name.replace('"', "'"),
                r.mean_ns,
                r.min_ns,
                r.samples,
                throughput
            );
        }
        let _ = writeln!(body, "  ]");
        let _ = writeln!(body, "}}");
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            eprintln!("wrote {path}");
        }
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Time one execution of `routine` (accumulates into the sample).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iterations += 1;
        black_box(out);
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
