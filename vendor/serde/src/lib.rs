//! Minimal in-tree `serde` replacement.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small slice of serde that the workspace actually uses: a
//! [`Serialize`] / [`Deserialize`] trait pair built around a JSON-shaped
//! [`Value`] tree, plus `#[derive(Serialize, Deserialize)]` macros
//! (re-exported from the sibling `serde_derive` proc-macro crate).
//!
//! The data model intentionally mirrors `serde_json`'s external tagging so
//! that serialized output looks like what real serde would produce:
//!
//! * structs become objects keyed by field name;
//! * newtype structs serialize as their inner value;
//! * unit enum variants become strings, data-carrying variants become
//!   single-key objects `{"Variant": ...}`;
//! * maps with integer keys become objects with stringified keys.

use std::collections::BTreeMap;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the serialization data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative or signed integer.
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The entries if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(v) => Some(v),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric coercion to `f64` for any number value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric coercion to `u64` for non-negative integer values.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Numeric coercion to `i64` for integer values.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// True if this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// An error of the form `expected <what> for <type>`.
    pub fn expected(what: &str, ty: &str) -> Error {
        Error(format!("expected {what} for {ty}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can serialize itself into a [`Value`].
pub trait Serialize {
    /// Convert into the serialization data model.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Convert back from the serialization data model.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Look up a required struct field in an object's entries (derive helper).
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------------------
// primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(raw).map_err(|_| Error(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(raw).map_err(|_| Error(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().map(|f| f as f32).ok_or_else(|| Error::expected("number", "f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::expected("boolean", "bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_owned).ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value.as_str().ok_or_else(|| Error::expected("string", "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-character string", "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(Deserialize::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.as_array().ok_or_else(|| Error::expected("array", "tuple"))?;
        if items.len() != 2 {
            return Err(Error::expected("2-element array", "tuple"));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.as_array().ok_or_else(|| Error::expected("array", "tuple"))?;
        if items.len() != 3 {
            return Err(Error::expected("3-element array", "tuple"));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?, C::from_value(&items[2])?))
    }
}

/// Map keys must render to/from strings, as in JSON objects.
pub trait MapKey: Sized {
    /// Render the key as an object-member name.
    fn to_key(&self) -> String;
    /// Parse the key back from an object-member name.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_numeric_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| Error(format!("bad {} map key `{key}`", stringify!($t))))
            }
        }
    )*};
}

impl_numeric_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::expected("object", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i16::from_value(&(-7i16).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert(7u16, vec![1u32, 2]);
        assert_eq!(BTreeMap::<u16, Vec<u32>>::from_value(&m.to_value()).unwrap(), m);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        assert_eq!(Option::<u8>::from_value(&Some(3u8).to_value()).unwrap(), Some(3));
    }

    #[test]
    fn range_checks_fail_loudly() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }
}
