//! Genomics scenario: tune the soft-core processor for BLASTN, the paper's
//! flagship workload (Section 2.5, Figures 2/3/5/6).
//!
//! Runs the full 52-variable optimisation twice — once weighted for runtime
//! (the paper's `w1=100, w2=1`) and once weighted for chip resources
//! (`w1=1, w2=100`) — and prints the recommended configuration and the
//! measured consequences of each, so an application developer can see the
//! performance/area trade-off for their genomics appliance.
//!
//! ```text
//! cargo run --release --example blastn_genomics_tuning
//! ```

use liquid_autoreconf::prelude::*;

fn describe(outcome: &liquid_autoreconf::tuner::Outcome) {
    let cfg = &outcome.recommended;
    println!("  selected perturbations ({}):", outcome.selected.len());
    for change in &outcome.changes {
        println!("    - {change}");
    }
    println!(
        "  recommended core: icache {}x{}KB/{}w, dcache {}x{}KB/{}w {}, mul {}, div {}, windows {}",
        cfg.icache.ways,
        cfg.icache.way_kb,
        cfg.icache.line_words,
        cfg.dcache.ways,
        cfg.dcache.way_kb,
        cfg.dcache.line_words,
        cfg.dcache.replacement.short_name(),
        cfg.iu.multiplier.short_name(),
        cfg.iu.divider.short_name(),
        cfg.iu.reg_windows,
    );
    println!(
        "  predicted: runtime {:.4}s, {:.1}% LUTs, {:.1}% BRAM",
        outcome.prediction.runtime_seconds,
        outcome.prediction.lut_pct_linear,
        outcome.prediction.bram_pct_nonlinear
    );
    println!(
        "  measured : runtime {:.4}s ({:+.2}% vs base), {}% LUTs, {}% BRAM, fits: {}",
        outcome.validation.seconds,
        outcome.validation.runtime_delta_pct,
        outcome.validation.lut_pct,
        outcome.validation.bram_pct,
        outcome.validation.fits
    );
}

fn main() {
    let scale = Scale::Small;
    let workload = Blastn::scaled(scale);
    println!(
        "Tuning the soft core for BLASTN ({} KB database, {} seed batches)\n",
        workload.db_len / 1024,
        workload.batches
    );

    println!("== application runtime optimisation (w1=100, w2=1) ==");
    let runtime_tool = AutoReconfigurator::new().with_weights(Weights::runtime_optimized());
    let runtime_outcome = runtime_tool.optimize(&workload).expect("runtime optimisation succeeds");
    describe(&runtime_outcome);
    println!(
        "  => BLASTN runs {:.2}% faster than on the out-of-the-box LEON\n",
        runtime_outcome.runtime_gain_pct()
    );

    println!("== chip resource optimisation (w1=1, w2=100) ==");
    let resource_tool = AutoReconfigurator::new().with_weights(Weights::resource_optimized());
    let resource_outcome = resource_tool.optimize(&workload).expect("resource optimisation succeeds");
    describe(&resource_outcome);
    println!(
        "  => saves {} LUT points and {} BRAM points at a {:.2}% runtime cost",
        39i64 - resource_outcome.validation.lut_pct as i64,
        51i64 - resource_outcome.validation.bram_pct as i64,
        -resource_outcome.runtime_gain_pct()
    );
}
