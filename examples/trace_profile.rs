//! Print the trace-engine profile of every benchmark workload: dynamic
//! instruction count, record counts after fetch-run compression, and the
//! event mix that decides which replay tier (closed-form / memory-walk /
//! fetch-walk) a perturbation uses.
//!
//! ```sh
//! cargo run --release --example trace_profile
//! ```

use leon_sim::LeonConfig;
use workloads::{benchmark_suite, Scale};

fn main() {
    let base = LeonConfig::base();
    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8} {:>9} {:>7} {:>9}",
        "workload", "instrs", "records", "mem ops", "branches", "loads", "stores", "mul/div", "traps", "KiB"
    );
    for workload in benchmark_suite(Scale::Tiny) {
        let program = workload.build();
        let (run, trace) = leon_sim::capture(&base, &program, 2_000_000_000).unwrap();
        let s = &trace.summary;
        println!(
            "{:<8} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8} {:>9} {:>7} {:>9.1}",
            workload.name(),
            s.instructions,
            trace.len(),
            trace.mem.len(),
            s.branches,
            s.loads,
            s.stores,
            s.mul_ops + s.div_ops,
            run.stats.window_overflows + run.stats.window_underflows,
            trace.memory_bytes() as f64 / 1024.0,
        );
    }
}
