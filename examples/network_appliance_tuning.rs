//! Network-appliance scenario: one soft core, two packet-processing
//! applications (the paper's CommBench workloads DRR and FRAG).
//!
//! A switch line card might run either the deficit-round-robin scheduler or
//! the IP fragmentation engine on its embedded soft core.  This example tunes
//! the core for each application individually (as the paper advocates) and
//! then cross-evaluates: how much of DRR's gain is lost if the core tuned for
//! FRAG is used instead, and vice versa?  That quantifies how
//! *application-specific* the customisation really is — the property the
//! paper demonstrates with Figures 5 and 7.
//!
//! ```text
//! cargo run --release --example network_appliance_tuning
//! ```

use liquid_autoreconf::prelude::*;

fn main() {
    let scale = Scale::Small;
    let drr = Drr::scaled(scale);
    let frag = Frag::scaled(scale);
    let tool = AutoReconfigurator::new().with_weights(Weights::runtime_optimized());

    println!("Tuning the soft core for each packet-processing application...\n");
    let drr_outcome = tool.optimize(&drr).expect("DRR optimisation succeeds");
    let frag_outcome = tool.optimize(&frag).expect("FRAG optimisation succeeds");

    for outcome in [&drr_outcome, &frag_outcome] {
        println!(
            "{:<5} tuned core: dcache {}x{}KB, icache {}KB, mul {}, gain {:.2}%  (changes: {:?})",
            outcome.workload,
            outcome.recommended.dcache.ways,
            outcome.recommended.dcache.way_kb,
            outcome.recommended.icache.way_kb,
            outcome.recommended.iu.multiplier.short_name(),
            outcome.runtime_gain_pct(),
            outcome.changes
        );
    }

    // ---- cross-evaluation: run each app on the other app's tuned core -----
    println!("\nCross-evaluation (cycles, lower is better):");
    let configs = [
        ("base LEON", LeonConfig::base()),
        ("DRR-tuned", drr_outcome.recommended),
        ("FRAG-tuned", frag_outcome.recommended),
    ];
    println!("{:<12} {:>15} {:>15}", "core", "DRR cycles", "FRAG cycles");
    for (name, config) in &configs {
        let drr_run = run_verified(&drr, config, 2_000_000_000).expect("DRR runs");
        let frag_run = run_verified(&frag, config, 2_000_000_000).expect("FRAG runs");
        println!(
            "{:<12} {:>15} {:>15}",
            name, drr_run.stats.cycles, frag_run.stats.cycles
        );
    }
    println!(
        "\nThe diagonal (each application on its own tuned core) should be the fastest entry in \
         its column — the customisation is application-specific, as the paper's Figure 5 shows."
    );
}
