//! Bring-your-own-workload design-space exploration.
//!
//! The paper's tool is not limited to its four benchmarks: any application
//! that can run on the soft core can be tuned.  This example defines a new
//! guest workload from scratch — a fixed-point 32×32 matrix multiply, a
//! typical embedded DSP kernel — implements the [`Workload`] trait for it
//! (including a host-side golden model so every candidate configuration is
//! verified), and runs the full measure → formulate → solve → validate
//! pipeline on it.
//!
//! ```text
//! cargo run --release --example custom_workload_dse
//! ```

use liquid_autoreconf::isa::{Asm, Program, Reg};
use liquid_autoreconf::prelude::*;

/// A fixed-point matrix multiply `C = A × B` over `n × n` 32-bit matrices.
struct MatMul {
    n: u32,
    seed: u64,
}

impl MatMul {
    fn new(n: u32, seed: u64) -> MatMul {
        assert!(n >= 2 && n <= 64);
        MatMul { n, seed }
    }

    fn inputs(&self) -> (Vec<u32>, Vec<u32>) {
        // simple deterministic generator (xorshift) — small values so the
        // products stay meaningful even with wrap-around
        let mut state = self.seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as u32) & 0xff
        };
        let n = (self.n * self.n) as usize;
        let a: Vec<u32> = (0..n).map(|_| next()).collect();
        let b: Vec<u32> = (0..n).map(|_| next()).collect();
        (a, b)
    }

    /// Host-side golden model: wrapping 32-bit arithmetic, plus a checksum
    /// that mixes every element of `C`.
    fn reference(&self) -> u32 {
        let (a, b) = self.inputs();
        let n = self.n as usize;
        let mut checksum: u32 = 0;
        for i in 0..n {
            for j in 0..n {
                let mut acc: u32 = 0;
                for k in 0..n {
                    acc = acc.wrapping_add(a[i * n + k].wrapping_mul(b[k * n + j]));
                }
                checksum = checksum.wrapping_mul(31).wrapping_add(acc);
            }
        }
        checksum
    }
}

impl Workload for MatMul {
    fn name(&self) -> &str {
        "MatMul"
    }

    fn description(&self) -> &str {
        "fixed-point n x n matrix multiply (embedded DSP kernel)"
    }

    fn build(&self) -> Program {
        let (a, b) = self.inputs();
        let n = self.n;
        let mut asm = Asm::new("matmul");
        asm.data_label("a");
        asm.data_words(&a);
        asm.data_label("b");
        asm.data_words(&b);

        // g1 = A, g2 = B, g3 = n, g4 = n*4 (row stride in bytes)
        asm.set_data_addr(Reg::G1, "a");
        asm.set_data_addr(Reg::G2, "b");
        asm.set(Reg::G3, n);
        asm.set(Reg::G4, n * 4);
        asm.clr(Reg::O0); // checksum
        asm.clr(Reg::L0); // i
        asm.label("i_loop");
        asm.clr(Reg::L1); // j
        asm.label("j_loop");
        asm.clr(Reg::L2); // k
        asm.clr(Reg::L3); // acc
        // l4 = &A[i*n], l5 = &B[0*n + j]
        asm.smul(Reg::L4, Reg::L0, Reg::G4);
        asm.add(Reg::L4, Reg::L4, Reg::G1);
        asm.sll(Reg::L5, Reg::L1, 2);
        asm.add(Reg::L5, Reg::L5, Reg::G2);
        asm.label("k_loop");
        asm.ld(Reg::L6, Reg::L4, 0); // A[i][k]
        asm.ld(Reg::L7, Reg::L5, 0); // B[k][j]
        asm.smul(Reg::L6, Reg::L6, Reg::L7);
        asm.add(Reg::L3, Reg::L3, Reg::L6);
        asm.add(Reg::L4, Reg::L4, 4); // next k in A (row-major)
        asm.add(Reg::L5, Reg::L5, Reg::G4); // next k in B (down a row)
        asm.add(Reg::L2, Reg::L2, 1);
        asm.cmp(Reg::L2, Reg::G3);
        asm.bl("k_loop");
        // checksum = checksum*31 + acc
        asm.smul(Reg::O0, Reg::O0, 31);
        asm.add(Reg::O0, Reg::O0, Reg::L3);
        asm.add(Reg::L1, Reg::L1, 1);
        asm.cmp(Reg::L1, Reg::G3);
        asm.bl("j_loop");
        asm.add(Reg::L0, Reg::L0, 1);
        asm.cmp(Reg::L0, Reg::G3);
        asm.bl("i_loop");
        asm.report(1, Reg::O0);
        asm.halt();
        asm.assemble().expect("matmul assembles")
    }

    fn expected_reports(&self) -> Vec<(u16, u32)> {
        vec![(1, self.reference())]
    }
}

fn main() {
    let workload = MatMul::new(48, 0xfeed_f00d);
    println!("Custom workload: {} ({})\n", workload.name(), workload.description());

    // sanity run on the base configuration
    let base_run = run_verified(&workload, &LeonConfig::base(), 2_000_000_000)
        .expect("the custom workload runs and verifies");
    println!(
        "base configuration: {} cycles, CPI {:.2}, dcache miss rate {:.2}%",
        base_run.stats.cycles,
        base_run.stats.cpi(),
        base_run.stats.dcache.miss_rate() * 100.0
    );

    // full-space, runtime-weighted design-space exploration
    let tool = AutoReconfigurator::new().with_weights(Weights::runtime_optimized());
    let outcome = tool.optimize(&workload).expect("optimisation succeeds");
    println!("\nrecommended changes for {}:", outcome.workload);
    for change in &outcome.changes {
        println!("  - {change}");
    }
    println!(
        "\npredicted gain {:.2}%, measured gain {:.2}% ({} -> {} cycles); {}% LUTs, {}% BRAM",
        outcome.predicted_gain_pct(),
        outcome.runtime_gain_pct(),
        outcome.cost_table.base.cycles,
        outcome.validation.cycles,
        outcome.validation.lut_pct,
        outcome.validation.bram_pct
    );
}
