//! Quickstart: assemble a tiny guest program, run it on the base LEON
//! configuration, inspect the profiler output, and then let the automatic
//! reconfigurator tune the data cache for the paper's benchmark suite.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use liquid_autoreconf::prelude::*;
use liquid_autoreconf::tuner::ParameterSpace;

/// A small guest program written in the text assembly syntax: it sums a
/// 4 KB table in memory twenty times and reports the total.
const SOURCE: &str = r#"
        set     0x20000, %g1        ; table base (the data segment)
        set     20, %l5             ; passes
        clr     %o0                 ; accumulator
pass:
        mov     %g1, %l0
        set     4096, %l1
loop:
        ld      [%l0], %l2
        add     %o0, %l2, %o0
        add     %l0, 4, %l0
        subcc   %l1, 4, %l1
        bne     loop
        subcc   %l5, 1, %l5
        bne     pass
        report  1, %o0
        halt
"#;

fn main() {
    // ---- 1. assemble ------------------------------------------------------
    let mut program = liquid_autoreconf::isa::assemble_text("table-sum", SOURCE)
        .expect("the quickstart program assembles");
    // give the table some contents (the text assembler leaves data empty)
    program.data = (0..1024u32).flat_map(|i| (i * 3).to_le_bytes()).collect();

    // ---- 2. run on the base configuration ---------------------------------
    let base = LeonConfig::base();
    let result = simulate(&base, &program, 100_000_000).expect("simulation succeeds");
    println!("== base configuration ==");
    println!("cycles            : {}", result.stats.cycles);
    println!("instructions      : {}", result.stats.instructions);
    println!("CPI               : {:.2}", result.stats.cpi());
    println!("dcache miss rate  : {:.2}%", result.stats.dcache.miss_rate() * 100.0);
    println!("checksum (chan 1) : {:?}", result.report(1));

    // ---- 3. what does the processor cost on the FPGA? ---------------------
    let model = SynthesisModel::default();
    let report = model.synthesize(&base);
    println!(
        "base LEON uses {} LUTs ({}%) and {} BRAM blocks ({}%) of the {}",
        report.luts,
        report.lut_percent,
        report.bram_blocks,
        report.bram_percent,
        model.device().name
    );

    // ---- 4. tune the four paper benchmarks' data cache --------------------
    // (the quickstart uses the dcache-only sub-space so it finishes in a few
    // seconds; see the other examples for full-space tuning)
    println!("\n== dcache tuning of the paper's benchmark suite ==");
    let tool = AutoReconfigurator::new()
        .with_space(ParameterSpace::dcache_geometry())
        .with_weights(Weights::runtime_only());
    for workload in liquid_autoreconf::apps::benchmark_suite(Scale::Tiny) {
        let outcome = tool.optimize(workload.as_ref()).expect("optimisation succeeds");
        println!(
            "{:<8} -> dcache {} set(s) x {:>2} KB   runtime {:>8} cycles (gain {:+.2}%)   changes: {:?}",
            outcome.workload,
            outcome.recommended.dcache.ways,
            outcome.recommended.dcache.way_kb,
            outcome.validation.cycles,
            outcome.runtime_gain_pct(),
            outcome.changes,
        );
    }
}
