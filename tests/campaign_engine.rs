//! Campaign-engine contracts:
//!
//! * **determinism** — every campaign/table/sweep result is *byte-identical*
//!   (compared as `serde_json` strings) for `threads = 1` vs `threads = N`,
//!   covering the parallel sweep, the parallel cost table, and the full
//!   multi-workload co-optimization pipeline;
//! * **degenerate weights** — co-optimization with the whole mix weight on a
//!   single workload reproduces that workload's per-application optimum
//!   exactly, anchoring the multi-workload objective to the paper's
//!   Figures 5/7 pipeline.

use liquid_autoreconf::apps::{benchmark_suite, Scale};
use liquid_autoreconf::sim::LeonConfig;
use liquid_autoreconf::tuner::{
    dcache_exhaustive_traced, measure_cost_table, AutoReconfigurator, Campaign,
    MeasurementOptions, ParameterSpace, Weights,
};
use liquid_autoreconf::fpga::SynthesisModel;

const MAX_CYCLES: u64 = 400_000_000;

fn measurement(threads: usize) -> MeasurementOptions {
    MeasurementOptions { max_cycles: MAX_CYCLES, threads, use_replay: true }
}

fn campaign(threads: usize, space: ParameterSpace) -> Campaign {
    Campaign::new()
        .with_space(space)
        .with_weights(Weights::runtime_optimized())
        .with_measurement(measurement(threads))
}

#[test]
fn sweep_is_byte_identical_across_thread_counts() {
    let suite = benchmark_suite(Scale::Tiny);
    let base = LeonConfig::base();
    let model = SynthesisModel::default();
    for w in &suite {
        let (_, trace) =
            liquid_autoreconf::apps::capture_verified(w.as_ref(), &base, MAX_CYCLES).unwrap();
        let serial = dcache_exhaustive_traced(&trace, &base, &model, MAX_CYCLES, 1).unwrap();
        let parallel = dcache_exhaustive_traced(&trace, &base, &model, MAX_CYCLES, 4).unwrap();
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap(),
            "{}: parallel sweep must serialise byte-identically",
            w.name()
        );
    }
}

#[test]
fn cost_table_is_byte_identical_across_thread_counts() {
    let suite = benchmark_suite(Scale::Tiny);
    let base = LeonConfig::base();
    let model = SynthesisModel::default();
    let space = ParameterSpace::paper();
    let w = suite[0].as_ref(); // BLASTN exercises every cost component
    let serial = measure_cost_table(&space, w, &base, &model, &measurement(1)).unwrap();
    let parallel = measure_cost_table(&space, w, &base, &model, &measurement(4)).unwrap();
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap(),
        "parallel cost table must serialise byte-identically"
    );
}

#[test]
fn whole_campaign_is_byte_identical_across_thread_counts() {
    let suite = benchmark_suite(Scale::Tiny);
    let mix = Campaign::equal_mix(suite.len());
    let serial = campaign(1, ParameterSpace::dcache_geometry()).run(&suite, &mix).unwrap();
    let parallel = campaign(4, ParameterSpace::dcache_geometry()).run(&suite, &mix).unwrap();
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap(),
        "the campaign result (tables + sweeps + per-app + co-optimization) \
         must serialise byte-identically for threads=1 vs threads=N"
    );
}

#[test]
fn degenerate_mix_reproduces_each_per_application_optimum() {
    let suite = benchmark_suite(Scale::Tiny);
    let space = ParameterSpace::paper();
    let engine = campaign(2, space.clone());
    let traces = engine.capture(&suite).unwrap();
    let tables = engine.cost_tables(&suite, &traces).unwrap();

    let tool = AutoReconfigurator::new()
        .with_space(space)
        .with_weights(Weights::runtime_optimized())
        .with_measurement(measurement(2));

    for (k, w) in suite.iter().enumerate() {
        // all of the mix weight on workload k
        let mut mix = vec![0.0; suite.len()];
        mix[k] = 1.0;
        let co = engine.co_optimize(&traces, &tables, &mix).unwrap();
        let per_app = tool.optimize_with_table(w.as_ref(), tables[k].clone()).unwrap();

        assert_eq!(
            co.selected, per_app.selected,
            "{}: degenerate mix must select the per-application optimum",
            w.name()
        );
        assert_eq!(
            co.recommended, per_app.recommended,
            "{}: degenerate mix must decode to the same configuration",
            w.name()
        );
        // replay-based co validation must agree bit-for-bit with the
        // per-application pipeline's full-simulation validation
        assert_eq!(
            co.per_workload[k].cycles,
            per_app.validation.cycles,
            "{}: replay validation must equal full-simulation validation",
            w.name()
        );
        assert_eq!(co.per_workload[k].weight, 1.0);
        assert!(co.per_workload.iter().enumerate().all(|(i, r)| i == k || r.weight == 0.0));
    }
}
