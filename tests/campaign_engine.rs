//! Campaign-engine contracts:
//!
//! * **determinism** — every campaign/table/sweep result is *byte-identical*
//!   (compared as `serde_json` strings) for `threads = 1` vs `threads = N`,
//!   covering the parallel sweep, the parallel cost table, and the full
//!   multi-workload co-optimization pipeline;
//! * **degenerate weights** — co-optimization with the whole mix weight on a
//!   single workload reproduces that workload's per-application optimum
//!   exactly, anchoring the multi-workload objective to the paper's
//!   Figures 5/7 pipeline;
//! * **weight algebra** (proptest, extending the 64-case geometry-proptest
//!   style of `tests/replay_equivalence.rs`) — `blend_cost_tables` over
//!   random non-uniform weights is order-invariant, scale-invariant under
//!   normalization (bit-for-bit for power-of-two scalings), and a
//!   degenerate weight vector reproduces the per-app table bit-for-bit.

use std::sync::OnceLock;

use liquid_autoreconf::apps::{benchmark_suite, Scale};
use liquid_autoreconf::sim::LeonConfig;
use liquid_autoreconf::tuner::{
    blend_cost_tables, dcache_exhaustive_traced, measure_cost_table, AutoReconfigurator, Campaign,
    CostTable, MeasurementOptions, ParameterSpace, Weights,
};
use liquid_autoreconf::fpga::SynthesisModel;
use proptest::prelude::*;

const MAX_CYCLES: u64 = 400_000_000;

fn measurement(threads: usize) -> MeasurementOptions {
    MeasurementOptions { max_cycles: MAX_CYCLES, threads, use_replay: true, batch_replay: true }
}

fn campaign(threads: usize, space: ParameterSpace) -> Campaign {
    Campaign::new()
        .with_space(space)
        .with_weights(Weights::runtime_optimized())
        .with_measurement(measurement(threads))
}

#[test]
fn sweep_is_byte_identical_across_thread_counts() {
    let suite = benchmark_suite(Scale::Tiny);
    let base = LeonConfig::base();
    let model = SynthesisModel::default();
    for w in &suite {
        let (_, trace) =
            liquid_autoreconf::apps::capture_verified(w.as_ref(), &base, MAX_CYCLES).unwrap();
        let serial = dcache_exhaustive_traced(&trace, &base, &model, MAX_CYCLES, 1).unwrap();
        let parallel = dcache_exhaustive_traced(&trace, &base, &model, MAX_CYCLES, 4).unwrap();
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap(),
            "{}: parallel sweep must serialise byte-identically",
            w.name()
        );
    }
}

#[test]
fn cost_table_is_byte_identical_across_thread_counts() {
    let suite = benchmark_suite(Scale::Tiny);
    let base = LeonConfig::base();
    let model = SynthesisModel::default();
    let space = ParameterSpace::paper();
    let w = suite[0].as_ref(); // BLASTN exercises every cost component
    let serial = measure_cost_table(&space, w, &base, &model, &measurement(1)).unwrap();
    let parallel = measure_cost_table(&space, w, &base, &model, &measurement(4)).unwrap();
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap(),
        "parallel cost table must serialise byte-identically"
    );
}

#[test]
fn whole_campaign_is_byte_identical_across_thread_counts() {
    let suite = benchmark_suite(Scale::Tiny);
    let mix = Campaign::equal_mix(suite.len());
    let serial = campaign(1, ParameterSpace::dcache_geometry()).run(&suite, &mix).unwrap();
    let parallel = campaign(4, ParameterSpace::dcache_geometry()).run(&suite, &mix).unwrap();
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap(),
        "the campaign result (tables + sweeps + per-app + co-optimization) \
         must serialise byte-identically for threads=1 vs threads=N"
    );
}

#[test]
fn whole_campaign_is_byte_identical_with_batched_and_per_config_replay() {
    // the one-pass batched engine (the default) against the per-config
    // kernel it replaced: every downstream artifact — cost tables, sweeps,
    // per-application optima, the co-optimization — must be byte-identical,
    // so batching is a pure cost change for the whole pipeline
    let suite = benchmark_suite(Scale::Tiny);
    let mix = Campaign::equal_mix(suite.len());
    let space = ParameterSpace::dcache_geometry();
    let batched = campaign(2, space.clone()).run(&suite, &mix).unwrap();
    let per_config = Campaign::new()
        .with_space(space)
        .with_weights(Weights::runtime_optimized())
        .with_measurement(MeasurementOptions { batch_replay: false, ..measurement(2) })
        .run(&suite, &mix)
        .unwrap();
    assert_eq!(
        serde_json::to_string(&batched).unwrap(),
        serde_json::to_string(&per_config).unwrap(),
        "batched replay must be invisible in the campaign's results"
    );
}

/// One measured cost table per suite workload (the dcache sub-space keeps
/// the measurement cheap), shared by every property-test case.
fn measured_tables() -> &'static Vec<CostTable> {
    static TABLES: OnceLock<Vec<CostTable>> = OnceLock::new();
    TABLES.get_or_init(|| {
        let base = LeonConfig::base();
        let model = SynthesisModel::default();
        let space = ParameterSpace::dcache_geometry();
        benchmark_suite(Scale::Tiny)
            .iter()
            .map(|w| measure_cost_table(&space, w.as_ref(), &base, &model, &measurement(2)).unwrap())
            .collect()
    })
}

/// splitmix64 over a seed: the deterministic draw source for weights and
/// permutations (mirrors `config_from_seed` in `tests/replay_equivalence.rs`).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A random strictly-positive, non-uniform, normalised weight vector.
fn weights_from_seed(state: &mut u64, n: usize) -> Vec<f64> {
    let raw: Vec<f64> = (0..n).map(|_| (splitmix(state) % 997 + 1) as f64 / 997.0).collect();
    let total: f64 = raw.iter().sum();
    raw.iter().map(|w| w / total).collect()
}

/// Field-wise near-equality of two blended tables (used where float
/// summation order legitimately differs by an ulp).
fn assert_tables_close(a: &CostTable, b: &CostTable, what: &str) {
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs()));
    assert!(close(a.base.seconds, b.base.seconds), "{what}: base seconds");
    assert!(a.base.cycles.abs_diff(b.base.cycles) <= 1, "{what}: base cycles");
    assert_eq!(a.len(), b.len());
    for (x, y) in a.costs.iter().zip(&b.costs) {
        assert_eq!(x.index, y.index);
        assert!(x.cycles.abs_diff(y.cycles) <= 1, "{what}: x{} cycles", x.index);
        for (fx, fy, name) in [
            (x.rho, y.rho, "rho"),
            (x.lambda, y.lambda, "lambda"),
            (x.beta, y.beta, "beta"),
            (x.seconds, y.seconds, "seconds"),
            (x.lut_pct, y.lut_pct, "lut_pct"),
            (x.bram_pct, y.bram_pct, "bram_pct"),
        ] {
            assert!(close(fx, fy), "{what}: x{} {name}: {fx} vs {fy}", x.index);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Order-invariance: blending a permutation of the (share, table) pairs
    /// yields the same blended costs (up to float-summation order — the
    /// per-field tolerance is one part in 10⁹).
    #[test]
    fn blend_is_order_invariant(seed in any::<u64>()) {
        let tables = measured_tables();
        let mut state = seed;
        let shares = weights_from_seed(&mut state, tables.len());
        let mut mix: Vec<(f64, &CostTable)> =
            shares.iter().copied().zip(tables.iter()).collect();
        let reference = blend_cost_tables(&mix);

        // a seed-derived Fisher–Yates shuffle of the pair list
        for i in (1..mix.len()).rev() {
            mix.swap(i, (splitmix(&mut state) % (i as u64 + 1)) as usize);
        }
        let shuffled = blend_cost_tables(&mix);
        assert_tables_close(&shuffled, &reference, "permuted mix");
    }

    /// Scale-invariance under normalization: scaling every raw weight by a
    /// common positive factor and re-normalising reproduces the blend — and
    /// for power-of-two factors (where normalization is exact in binary
    /// floating point) it reproduces it bit-for-bit.
    #[test]
    fn blend_is_scale_invariant_under_normalization(seed in any::<u64>()) {
        let tables = measured_tables();
        let mut state = seed;
        let raw: Vec<f64> =
            (0..tables.len()).map(|_| (splitmix(&mut state) % 997 + 1) as f64).collect();
        let total: f64 = raw.iter().sum();
        let shares: Vec<f64> = raw.iter().map(|w| w / total).collect();
        let mix: Vec<(f64, &CostTable)> = shares.iter().copied().zip(tables.iter()).collect();
        let reference = blend_cost_tables(&mix);

        // power-of-two scaling: exact normalization, bit-identical blend
        let pow2 = [0.125, 0.25, 2.0, 64.0][(splitmix(&mut state) % 4) as usize];
        let scaled_total: f64 = raw.iter().map(|w| w * pow2).sum::<f64>();
        let scaled: Vec<f64> = raw.iter().map(|w| w * pow2 / scaled_total).collect();
        let mix2: Vec<(f64, &CostTable)> = scaled.iter().copied().zip(tables.iter()).collect();
        let exact = blend_cost_tables(&mix2);
        prop_assert_eq!(
            serde_json::to_string(&exact).unwrap(),
            serde_json::to_string(&reference).unwrap(),
            "power-of-two rescaling must be bit-identical"
        );

        // arbitrary positive scaling: equal within float tolerance
        let factor = (splitmix(&mut state) % 9_000 + 1_000) as f64 / 100.0; // 10.00..100.00
        let scaled_total: f64 = raw.iter().map(|w| w * factor).sum::<f64>();
        let scaled: Vec<f64> = raw.iter().map(|w| w * factor / scaled_total).collect();
        let mix3: Vec<(f64, &CostTable)> = scaled.iter().copied().zip(tables.iter()).collect();
        assert_tables_close(&blend_cost_tables(&mix3), &reference, "rescaled mix");
    }

    /// A degenerate weight vector (all mass on one workload) reproduces that
    /// workload's per-application cost table bit-for-bit.
    #[test]
    fn degenerate_blend_reproduces_the_per_app_table(seed in any::<u64>()) {
        let tables = measured_tables();
        let k = (seed % tables.len() as u64) as usize;
        let mut shares = vec![0.0; tables.len()];
        shares[k] = 1.0;
        let mix: Vec<(f64, &CostTable)> = shares.iter().copied().zip(tables.iter()).collect();
        let blended = blend_cost_tables(&mix);
        prop_assert_eq!(&blended.base, &tables[k].base, "base costs must be reproduced exactly");
        prop_assert_eq!(&blended.costs, &tables[k].costs, "variable costs must be bit-identical");
    }
}

#[test]
fn degenerate_mix_reproduces_each_per_application_optimum() {
    let suite = benchmark_suite(Scale::Tiny);
    let space = ParameterSpace::paper();
    let engine = campaign(2, space.clone());
    let traces = engine.capture(&suite).unwrap();
    let tables = engine.cost_tables(&suite, &traces).unwrap();

    let tool = AutoReconfigurator::new()
        .with_space(space)
        .with_weights(Weights::runtime_optimized())
        .with_measurement(measurement(2));

    for (k, w) in suite.iter().enumerate() {
        // all of the mix weight on workload k
        let mut mix = vec![0.0; suite.len()];
        mix[k] = 1.0;
        let co = engine.co_optimize(&traces, &tables, &mix).unwrap();
        let per_app = tool.optimize_with_table(w.as_ref(), tables[k].clone()).unwrap();

        assert_eq!(
            co.selected, per_app.selected,
            "{}: degenerate mix must select the per-application optimum",
            w.name()
        );
        assert_eq!(
            co.recommended, per_app.recommended,
            "{}: degenerate mix must decode to the same configuration",
            w.name()
        );
        // replay-based co validation must agree bit-for-bit with the
        // per-application pipeline's full-simulation validation
        assert_eq!(
            co.per_workload[k].cycles,
            per_app.validation.cycles,
            "{}: replay validation must equal full-simulation validation",
            w.name()
        );
        assert_eq!(co.per_workload[k].weight, 1.0);
        assert!(co.per_workload.iter().enumerate().all(|(i, r)| i == k || r.weight == 0.0));
    }
}
