//! Funnel budget contract of the pruned design-space search (DESIGN.md §13).
//!
//! The search module's reason to exist is that finding the optimum of a
//! candidate space must no longer walk every candidate.  These tests pin
//! that with the three process-wide funnel counters
//! (`candidates_enumerated` / `candidates_pruned_closed_form` /
//! `candidates_walk_validated`) and the replay engine's
//! `trace_walks_performed`:
//!
//! * on the paper's 28-geometry Figure 2 space, the pruned funnel
//!   walk-validates **fewer than half** the candidates (< 14 of 28) for every
//!   workload, the accounting identity
//!   `enumerated = pruned_closed_form + walk_validated` holds per search, and
//!   the trace-walk budget stays within the batched-replay class bound;
//! * on the 24 192-candidate expanded space, **at least 90 % of the
//!   candidates are never walked**;
//! * pruned and exhaustive modes return the byte-identical optimum (the
//!   full parity matrix lives in `tests/search_parity.rs`).
//!
//! The counters are process-global, so every test takes one shared lock
//! around its delta measurements (the `tests/batch_walk_budget.rs` pattern).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use liquid_autoreconf::apps::{benchmark_suite, Scale};
use liquid_autoreconf::sim::trace_walks_performed;
use liquid_autoreconf::tuner::{
    candidates_enumerated, candidates_pruned_closed_form, candidates_walk_validated,
    ArtifactStore, Campaign, MeasurementOptions, ParameterSpace, SearchMode, SearchSpace,
    Weights,
};

const MAX_CYCLES: u64 = 400_000_000;

static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

static SCRATCH: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "autoreconf-search-budget-{}-{}-{tag}",
        std::process::id(),
        SCRATCH.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine(threads: usize, store: Option<ArtifactStore>) -> Campaign {
    let mut c = Campaign::new()
        .with_space(ParameterSpace::dcache_geometry())
        .with_weights(Weights::runtime_optimized())
        .with_measurement(MeasurementOptions {
            max_cycles: MAX_CYCLES,
            threads,
            use_replay: true,
            batch_replay: true,
        });
    if let Some(s) = store {
        c = c.with_store(s);
    }
    c
}

#[test]
fn figure2_pruned_walks_fewer_than_half_the_candidates() {
    let _g = lock();
    let suite = benchmark_suite(Scale::Tiny);
    let dir = scratch_dir("fig2");
    let engine = engine(1, Some(ArtifactStore::open(&dir).unwrap()));
    let session = engine.session(&suite).unwrap();
    let sspace = SearchSpace::figure2();
    assert_eq!(sspace.len(), 28);

    for index in 0..suite.len() {
        let name = suite[index].name();

        // the exhaustive baseline first: it warms the trace + cost table, so
        // the pruned deltas below are attributable to the funnel alone
        let e0 = candidates_enumerated();
        let p0 = candidates_pruned_closed_form();
        let v0 = candidates_walk_validated();
        let exhaustive = session.search(index, &sspace, SearchMode::Exhaustive).unwrap();
        assert_eq!(candidates_enumerated() - e0, 28, "{name}: exhaustive enumerates all");
        assert_eq!(
            candidates_walk_validated() - v0,
            (28 - exhaustive.candidates_infeasible) as u64,
            "{name}: exhaustive walk-validates every feasible candidate"
        );
        assert_eq!(
            (candidates_pruned_closed_form() - p0) as usize,
            exhaustive.candidates_infeasible,
            "{name}: exhaustive prunes exactly the infeasible candidates"
        );

        // the pruned funnel: same optimum, fewer than half the walks
        let e0 = candidates_enumerated();
        let p0 = candidates_pruned_closed_form();
        let v0 = candidates_walk_validated();
        let w0 = trace_walks_performed();
        let pruned = session.search(index, &sspace, SearchMode::Pruned).unwrap();
        let enumerated = candidates_enumerated() - e0;
        let pruned_cf = candidates_pruned_closed_form() - p0;
        let validated = candidates_walk_validated() - v0;
        let walks = trace_walks_performed() - w0;
        println!(
            "figure2 {name}: enumerated {enumerated}, pruned {pruned_cf}, validated \
             {validated}, rounds {}, frontier {}, walks {walks}",
            pruned.validation_rounds, pruned.frontier_size
        );

        assert_eq!(enumerated, 28, "{name}: the funnel enumerates the whole space");
        assert_eq!(
            enumerated,
            pruned_cf + validated,
            "{name}: every candidate is either pruned closed-form or walk-validated"
        );
        assert_eq!(validated as usize, pruned.candidates_walk_validated);
        assert_eq!(pruned_cf as usize, pruned.candidates_pruned_closed_form);
        assert!(
            validated < 14,
            "{name}: pruned mode must walk-validate fewer than half of 28, got {validated}"
        );
        assert!(
            pruned.frontier_size <= pruned.candidates_walk_validated,
            "{name}: everything the Pareto frontier seeds gets validated"
        );

        // walk budget: the batched engine pays at most one walk per validated
        // candidate per stream — far below one-walk-per-candidate — and the
        // figure-2 space touches only the memory stream
        assert!(
            walks <= validated,
            "{name}: batched validation must not walk more than once per validated \
             candidate ({walks} > {validated})"
        );

        // both modes crown the byte-identical optimum
        assert_eq!(
            serde_json::to_string(&pruned.best).unwrap(),
            serde_json::to_string(&exhaustive.best).unwrap(),
            "{name}: pruned and exhaustive must agree on the optimum"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn expanded_space_prunes_at_least_ninety_percent_without_walking() {
    let _g = lock();
    let suite = benchmark_suite(Scale::Tiny);
    let dir = scratch_dir("expanded");
    let engine = engine(0, Some(ArtifactStore::open(&dir).unwrap()));
    let session = engine.session(&suite).unwrap();
    let sspace = SearchSpace::expanded();
    assert_eq!(sspace.len(), 24_192);

    // BLASTN: the memory-bound workload where cache geometry matters most
    let index = 0;
    let e0 = candidates_enumerated();
    let p0 = candidates_pruned_closed_form();
    let v0 = candidates_walk_validated();
    let outcome = session.search(index, &sspace, SearchMode::Pruned).unwrap();
    let enumerated = candidates_enumerated() - e0;
    let pruned_cf = candidates_pruned_closed_form() - p0;
    let validated = candidates_walk_validated() - v0;
    println!(
        "expanded {}: enumerated {enumerated}, pruned {pruned_cf}, validated {validated}, \
         infeasible {}, rounds {}, frontier {}",
        outcome.workload, outcome.candidates_infeasible, outcome.validation_rounds,
        outcome.frontier_size
    );

    assert_eq!(enumerated, 24_192);
    assert_eq!(enumerated, pruned_cf + validated);
    assert!(
        validated <= 2_419,
        "expanded space must prune at least 90% closed-form, walk-validated {validated}"
    );
    let best = outcome.best.expect("the base configuration always fits");
    assert!(best.recommended.validate().is_ok());

    let _ = std::fs::remove_dir_all(&dir);
}
