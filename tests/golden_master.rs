//! Golden-master fixtures: the paper-shaped results, frozen byte-for-byte.
//!
//! The store/laziness refactors promise "faster, never different".  These
//! tests make that promise falsifiable: the canonical `Scale::Tiny` results
//! — per-application optima over the paper's 52-variable space, the Figure 2
//! exhaustive sweeps, and the co-optimization outcomes for the equal mix and
//! every degenerate mix — are committed as pretty-printed JSON under
//! `tests/golden/`, and every run (store off, cold, warm, post-GC) must
//! reproduce them *byte-identically*.  The vendored `serde_json` round-trips
//! every `f64`/`u64` bit-exactly and the whole pipeline is deterministic at
//! any thread count (pinned by `tests/campaign_engine.rs`), so any diff here
//! is a real behaviour change.
//!
//! Regenerate intentionally with:
//!
//! ```text
//! BLESS=1 cargo test --test golden_master
//! ```
//!
//! and review the fixture diff like any other code change.

use std::path::PathBuf;

use liquid_autoreconf::apps::{benchmark_suite, Scale};
use liquid_autoreconf::tuner::{
    ArtifactStore, Campaign, CampaignSession, MeasurementOptions, Weights,
};

const MAX_CYCLES: u64 = 400_000_000;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn campaign(store: Option<ArtifactStore>) -> Campaign {
    // the paper's full 52-variable space with the runtime-optimisation
    // weights — the configuration behind Figures 2, 5 and 6
    let mut c = Campaign::new().with_weights(Weights::runtime_optimized()).with_measurement(
        MeasurementOptions { max_cycles: MAX_CYCLES, threads: 0, use_replay: true, batch_replay: true },
    );
    if let Some(store) = store {
        c = c.with_store(store);
    }
    c
}

/// The three golden artifacts, rendered as (file name, pretty JSON).
fn render_goldens(session: &CampaignSession) -> Vec<(&'static str, String)> {
    let n = session.len();
    session.materialize_all().expect("derive every artifact");
    let per_app: Vec<_> = (0..n).map(|i| session.per_app_outcome(i).unwrap().clone()).collect();
    let sweeps: Vec<_> = (0..n).map(|i| session.sweep(i).unwrap().clone()).collect();

    // co-optimization outcomes: the equal mix plus every degenerate mix
    // (the degenerate ones must coincide with the per-application optima —
    // the correctness anchor of DESIGN.md §6)
    let mut cos = Vec::new();
    cos.push(session.co_optimize(&vec![1.0; n]).unwrap());
    for k in 0..n {
        let mut mix = vec![0.0; n];
        mix[k] = 1.0;
        cos.push(session.co_optimize(&mix).unwrap());
    }

    vec![
        ("per_app_optima.json", serde_json::to_string_pretty(&per_app).unwrap()),
        ("fig2_sweeps.json", serde_json::to_string_pretty(&sweeps).unwrap()),
        ("co_outcomes.json", serde_json::to_string_pretty(&cos).unwrap()),
    ]
}

/// Diff rendered artifacts against the committed fixtures (or regenerate
/// them under `BLESS=1`).  `phase` names the store phase for the message.
fn assert_matches_goldens(rendered: &[(&'static str, String)], phase: &str) {
    let bless = std::env::var("BLESS").map(|v| v == "1").unwrap_or(false);
    let dir = golden_dir();
    for (name, body) in rendered {
        let path = dir.join(name);
        if bless {
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(&path, body.as_bytes()).unwrap();
            eprintln!("blessed {}", path.display());
            continue;
        }
        let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); run `BLESS=1 cargo test --test golden_master` \
                 to generate it",
                path.display()
            )
        });
        assert!(
            *body == committed,
            "{phase}: {} diverges from the committed golden master.\n\
             If this change is intentional, regenerate with `BLESS=1 cargo test --test \
             golden_master` and review the fixture diff.\n\
             (computed {} bytes, committed {} bytes)",
            path.display(),
            body.len(),
            committed.len()
        );
    }
}

#[test]
fn golden_master_matches_a_storeless_run() {
    let suite = benchmark_suite(Scale::Tiny);
    let engine = campaign(None);
    let session = engine.session(&suite).unwrap();
    assert_matches_goldens(&render_goldens(&session), "store off");
}

#[test]
fn golden_master_holds_across_the_store_lifecycle() {
    // skip the (redundant) lifecycle sweep while blessing: the storeless
    // test writes the fixtures, this one would race it over the same files
    if std::env::var("BLESS").map(|v| v == "1").unwrap_or(false) {
        return;
    }
    let suite = benchmark_suite(Scale::Tiny);
    let dir = std::env::temp_dir().join(format!(
        "autoreconf-golden-lifecycle-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // cold: computes and persists every artifact
    let store = ArtifactStore::open(&dir).unwrap();
    let session = campaign(Some(store.clone())).session(&suite).unwrap();
    assert_matches_goldens(&render_goldens(&session), "cold store");
    drop(session);

    // warm: everything served from disk
    let session = campaign(Some(ArtifactStore::open(&dir).unwrap())).session(&suite).unwrap();
    assert_matches_goldens(&render_goldens(&session), "warm store");
    drop(session);

    // post-GC: a tight budget evicts most entries (no session pins are held
    // here), the next run recomputes the evicted artifacts — same bytes
    let report = store.gc(16 << 10).unwrap();
    assert!(report.within_budget(), "{report:?}");
    assert!(report.evicted > 0, "a 16 KiB budget must evict something: {report:?}");
    let session = campaign(Some(ArtifactStore::open(&dir).unwrap())).session(&suite).unwrap();
    assert_matches_goldens(&render_goldens(&session), "post-gc store");
    drop(session);

    assert!(store.doctor(false).unwrap().is_clean());
    let _ = std::fs::remove_dir_all(&dir);
}
