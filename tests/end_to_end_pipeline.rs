//! Cross-crate integration tests: the full measure → formulate → solve →
//! validate pipeline on every benchmark, at test scale.

use liquid_autoreconf::prelude::*;
use liquid_autoreconf::tuner::{MeasurementOptions, ParameterSpace};

fn fast() -> MeasurementOptions {
    MeasurementOptions { max_cycles: 400_000_000, threads: 0, use_replay: true, batch_replay: true }
}

#[test]
fn full_space_runtime_tuning_works_for_every_benchmark() {
    let tool = AutoReconfigurator::new()
        .with_weights(Weights::runtime_optimized())
        .with_measurement(fast());
    for workload in liquid_autoreconf::apps::benchmark_suite(Scale::Tiny) {
        let outcome = tool.optimize(workload.as_ref()).expect("optimisation succeeds");
        // the recommendation is structurally valid and fits the device
        assert!(outcome.recommended.validate().is_ok(), "{}", outcome.workload);
        assert!(outcome.validation.fits, "{}", outcome.workload);
        // the 52-variable cost table was fully measured
        assert_eq!(outcome.cost_table.len(), 52, "{}", outcome.workload);
        // runtime-weighted tuning must never slow the application down
        assert!(
            outcome.validation.cycles <= outcome.cost_table.base.cycles,
            "{} got slower: {} -> {}",
            outcome.workload,
            outcome.cost_table.base.cycles,
            outcome.validation.cycles
        );
        // the solver proved optimality of its model
        assert!(outcome.solver.proven_optimal, "{}", outcome.workload);
    }
}

#[test]
fn memory_bound_benchmarks_gain_more_than_register_bound_ones() {
    // The paper's headline observation: the customisation is
    // application-specific.  BLASTN and DRR (memory + multiply heavy) must
    // gain more from runtime tuning than Arith gains from dcache-only tuning.
    let full = AutoReconfigurator::new()
        .with_weights(Weights::runtime_optimized())
        .with_measurement(fast());
    let blastn = full.optimize(&Blastn::scaled(Scale::Tiny)).unwrap();
    let drr = full.optimize(&Drr::scaled(Scale::Tiny)).unwrap();

    let dcache_only = AutoReconfigurator::new()
        .with_space(ParameterSpace::dcache_geometry())
        .with_weights(Weights::runtime_only())
        .with_measurement(fast());
    let arith = dcache_only.optimize(&Arith::scaled(Scale::Tiny)).unwrap();

    assert!(blastn.runtime_gain_pct() > 0.5, "BLASTN gain {:.2}%", blastn.runtime_gain_pct());
    assert!(drr.runtime_gain_pct() > 0.5, "DRR gain {:.2}%", drr.runtime_gain_pct());
    assert!(arith.runtime_gain_pct().abs() < 0.01, "Arith dcache gain {:.4}%", arith.runtime_gain_pct());
    assert!(blastn.runtime_gain_pct() > arith.runtime_gain_pct());
    assert!(drr.runtime_gain_pct() > arith.runtime_gain_pct());
}

#[test]
fn recommended_configurations_are_application_specific() {
    // Different applications should end up with different recommended cores
    // (the paper's Figures 5 and 7 show per-application columns differing).
    let tool = AutoReconfigurator::new()
        .with_weights(Weights::runtime_optimized())
        .with_measurement(fast());
    let blastn = tool.optimize(&Blastn::scaled(Scale::Tiny)).unwrap();
    let arith = tool.optimize(&Arith::scaled(Scale::Tiny)).unwrap();
    assert_ne!(
        blastn.recommended, arith.recommended,
        "a memory-intensive and a register-only application should not get the same core"
    );
    // Arith needs the divider; BLASTN does not
    assert_eq!(arith.recommended.iu.divider, liquid_autoreconf::sim::Divider::Radix2);
    assert_eq!(blastn.recommended.iu.divider, liquid_autoreconf::sim::Divider::None);
}

#[test]
fn runtime_and_resource_weightings_trade_off_in_opposite_directions() {
    let workload = Blastn::scaled(Scale::Tiny);
    let runtime = AutoReconfigurator::new()
        .with_weights(Weights::runtime_optimized())
        .with_measurement(fast())
        .optimize(&workload)
        .unwrap();
    let resources = AutoReconfigurator::new()
        .with_weights(Weights::resource_optimized())
        .with_measurement(fast())
        .optimize(&workload)
        .unwrap();
    // resource-weighted tuning uses no more LUTs/BRAM than runtime-weighted
    assert!(resources.validation.lut_pct <= runtime.validation.lut_pct);
    assert!(resources.validation.bram_pct <= runtime.validation.bram_pct);
    // and is no faster
    assert!(resources.validation.cycles >= runtime.validation.cycles);
    // resource-weighted tuning actually saves resources relative to base
    assert!((resources.validation.bram_pct as f64) < resources.cost_table.base.bram_pct);
    assert!((resources.validation.lut_pct as f64) < resources.cost_table.base.lut_pct);
}

#[test]
fn workload_results_are_identical_across_all_recommended_cores() {
    // functional correctness: whatever core the optimiser recommends, the
    // application must still compute the same answers
    let workload = Frag::scaled(Scale::Tiny);
    for weights in [Weights::runtime_optimized(), Weights::resource_optimized()] {
        let outcome = AutoReconfigurator::new()
            .with_weights(weights)
            .with_measurement(fast())
            .optimize(&workload)
            .unwrap();
        // run_verified inside the pipeline already asserts golden outputs;
        // re-run explicitly on the recommended core for good measure
        let run = run_verified(&workload, &outcome.recommended, 400_000_000).unwrap();
        assert_eq!(run.report(1), workload.expected_reports()[0].1.into());
    }
}
