//! Integration tests for experiment artifacts: serialisation of outcomes and
//! the rendered figure tables.

use liquid_autoreconf::prelude::*;
use liquid_autoreconf::tuner::experiments::{fig2, fig6, ExperimentOptions};
use liquid_autoreconf::tuner::{MeasurementOptions, Outcome, ParameterSpace};

fn small_outcome() -> Outcome {
    AutoReconfigurator::new()
        .with_space(ParameterSpace::dcache_geometry())
        .with_weights(Weights::runtime_only())
        .with_measurement(MeasurementOptions { max_cycles: 400_000_000, threads: 0, use_replay: true, batch_replay: true })
        .optimize(&Blastn::scaled(Scale::Tiny))
        .unwrap()
}

#[test]
fn outcomes_serialize_to_json_and_back() {
    let outcome = small_outcome();
    let json = serde_json::to_string_pretty(&outcome).expect("outcome serialises");
    assert!(json.contains("\"workload\""));
    assert!(json.contains("\"recommended\""));
    let back: Outcome = serde_json::from_str(&json).expect("outcome deserialises");
    assert_eq!(back.workload, outcome.workload);
    assert_eq!(back.selected, outcome.selected);
    assert_eq!(back.recommended, outcome.recommended);
    assert_eq!(back.validation, outcome.validation);
}

#[test]
fn leon_configs_serialize_round_trip() {
    let mut config = LeonConfig::base();
    config.dcache.ways = 2;
    config.dcache.way_kb = 16;
    config.dcache.replacement = ReplacementPolicy::Lru;
    config.iu.multiplier = Multiplier::M32x32;
    let json = serde_json::to_string(&config).unwrap();
    let back: LeonConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, config);
}

#[test]
fn rendered_tables_have_the_papers_shape() {
    let opts = ExperimentOptions::test_sized();
    let f2 = fig2(&opts).unwrap();
    let table = f2.render();
    assert!(table.contains("exhaustive: dcache sets,setsize"));
    assert!(table.contains("Optimal runtime"));
    // one line per feasible row plus headers and the optimum
    assert!(table.lines().count() >= 19 + 3);

    let f6 = fig6(&opts).unwrap();
    let table6 = f6.render();
    assert!(table6.contains("runtime optimization costs"));
    assert!(table6.contains("LUTs(%)"));
}

#[test]
fn cost_tables_are_json_friendly_for_external_analysis() {
    let outcome = small_outcome();
    let json = serde_json::to_value(&outcome.cost_table).unwrap();
    let costs = json.get("costs").and_then(|c| c.as_array()).unwrap();
    assert_eq!(costs.len(), 8);
    for entry in costs {
        assert!(entry.get("rho").is_some());
        assert!(entry.get("lambda").is_some());
        assert!(entry.get("beta").is_some());
    }
}
