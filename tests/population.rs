//! Population-engine contracts (DESIGN.md §12):
//!
//! * **coverage** — every tenant of a 64-mix population is assigned a
//!   frontier configuration whose predicted regret is within the requested
//!   tolerance, the frontier partitions the tenants, and every frontier
//!   configuration fits the device;
//! * **batched = brute force** — the batched population path produces, for
//!   every tenant, byte-for-byte the same `CoOutcome` as a naive one-mix-at-
//!   a-time `co_optimize` loop, at `threads = 1` and `threads = 4`, and the
//!   two thread counts produce byte-identical `PopulationOutcome`s from
//!   *independent* stores (same-bytes, not same-cache);
//! * **scalar-multiple dedup** (property-tested) — `k·mix` for power-of-two
//!   `k` (including huge and tiny factors) canonicalises to bit-identical
//!   shares, lands on the same store entry (one cold compute,
//!   counter-asserted via guest instructions and `co` entry counts) and
//!   returns byte-identical outcomes; a population of scalar multiples
//!   collapses onto one unique mix.
//!
//! Counter-asserting tests share one process-wide lock so every
//! guest-instruction delta stays attributable.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use liquid_autoreconf::apps::{benchmark_suite, guest_instructions_executed, Scale};
use liquid_autoreconf::sim::trace_walks_performed;
use liquid_autoreconf::tuner::{
    canonical_shares, random_mixes, ArtifactStore, Campaign, MeasurementOptions, MixProfile,
    ParameterSpace, PopulationOutcome, Weights,
};
use proptest::prelude::*;

const MAX_CYCLES: u64 = 400_000_000;
const TOLERANCE_PCT: f64 = 5.0;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

static SCRATCH: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "autoreconf-population-{}-{}-{tag}",
        std::process::id(),
        SCRATCH.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The fast test engine: tiny suite, restricted d-cache space (the same
/// configuration the incremental-store tests pin their counters on).
fn engine(threads: usize, store: Option<ArtifactStore>) -> Campaign {
    let mut c = Campaign::new()
        .with_space(ParameterSpace::dcache_geometry())
        .with_weights(Weights::runtime_optimized())
        .with_measurement(MeasurementOptions {
            max_cycles: MAX_CYCLES,
            threads,
            use_replay: true,
            batch_replay: true,
        });
    if let Some(s) = store {
        c = c.with_store(s);
    }
    c
}

fn population_json(outcome: &PopulationOutcome) -> String {
    serde_json::to_string(outcome).unwrap()
}

#[test]
fn frontier_covers_every_tenant_within_tolerance() {
    let suite = benchmark_suite(Scale::Tiny);
    let mixes = random_mixes(64, suite.len(), 7);
    let engine = engine(0, None);
    let session = engine.session(&suite).unwrap();
    let outcome = session.population(&mixes, TOLERANCE_PCT).unwrap();

    assert_eq!(outcome.tenants.len(), 64);
    assert_eq!(outcome.tolerance_pct, TOLERANCE_PCT);
    assert!(!outcome.frontier.is_empty());
    assert!(outcome.unique.len() <= 64);
    assert!(outcome.frontier.len() <= outcome.candidates);

    // every tenant is served within tolerance by a fitting configuration
    for (t, tenant) in outcome.tenants.iter().enumerate() {
        assert!(
            tenant.regret_pct <= TOLERANCE_PCT,
            "tenant {t} ({}) regret {}% exceeds the tolerance",
            tenant.name,
            tenant.regret_pct
        );
        // regret may be slightly negative: the assigned configuration can
        // beat the tenant's own BINLP optimum on pure predicted runtime,
        // because the solver's objective is not runtime alone
        assert!(tenant.regret_pct.is_finite());
        let point = &outcome.frontier[tenant.frontier_index];
        assert!(point.fits, "tenant {t} is assigned a configuration that does not fit");
        assert!(point.tenants.contains(&t));
        assert!(tenant.unique_index < outcome.unique.len());
    }

    // the frontier's tenant lists partition the population
    let mut seen = vec![false; outcome.tenants.len()];
    for point in &outcome.frontier {
        assert!(point.max_regret_pct <= TOLERANCE_PCT);
        for &t in &point.tenants {
            assert!(!seen[t], "tenant {t} served by two frontier configurations");
            seen[t] = true;
        }
    }
    assert!(seen.iter().all(|&s| s), "every tenant must be served by the frontier");

    // scalar multiples from the integer weight grid actually collapsed
    assert!(
        outcome.unique.len() < outcome.tenants.len(),
        "a 64-mix grid population must contain scalar-multiple duplicates"
    );
    assert!(outcome.render().contains("frontier"));
}

#[test]
fn batched_population_matches_brute_force_per_mix_loop_at_1_and_4_threads() {
    let _g = lock();
    let suite = benchmark_suite(Scale::Tiny);
    let mixes = random_mixes(64, suite.len(), 11);

    // threads = 1 and threads = 4 solve the same population over
    // *independent* stores: byte-identity must come from determinism, not
    // from one run reading the other's cache
    let dir1 = scratch_dir("threads1");
    let dir4 = scratch_dir("threads4");
    let engine1 = engine(1, Some(ArtifactStore::open(&dir1).unwrap()));
    let engine4 = engine(4, Some(ArtifactStore::open(&dir4).unwrap()));
    let session1 = engine1.session(&suite).unwrap();
    let session4 = engine4.session(&suite).unwrap();
    let outcome1 = session1.population(&mixes, TOLERANCE_PCT).unwrap();
    let outcome4 = session4.population(&mixes, TOLERANCE_PCT).unwrap();
    assert_eq!(
        population_json(&outcome1),
        population_json(&outcome4),
        "population solves must be byte-identical at threads = 1 and threads = 4"
    );

    // brute force: a naive per-mix co_optimize loop over the warm store
    // must land on byte-for-byte the tenant's unique outcome — and read
    // everything from the store (zero guest instructions, zero trace walks)
    let guests_before = guest_instructions_executed();
    let walks_before = trace_walks_performed();
    for (t, mix) in mixes.iter().enumerate() {
        let brute = session4.co_optimize(&mix.weights).unwrap();
        let unique = &outcome4.unique[outcome4.tenants[t].unique_index];
        assert_eq!(
            serde_json::to_string(&brute).unwrap(),
            serde_json::to_string(unique).unwrap(),
            "tenant {t} ({}): brute-force co_optimize diverged from the batched path",
            mix.name
        );
    }
    assert_eq!(
        guest_instructions_executed(),
        guests_before,
        "the brute-force loop over a warm store must execute zero guest instructions"
    );
    assert_eq!(
        trace_walks_performed(),
        walks_before,
        "the brute-force loop over a warm store must perform zero trace walks"
    );

    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir4);
}

#[test]
fn scalar_multiples_share_one_store_entry_and_one_cold_compute() {
    let _g = lock();
    let suite = benchmark_suite(Scale::Tiny);
    let dir = scratch_dir("scalar");
    let engine = engine(2, Some(ArtifactStore::open(&dir).unwrap()));
    let session = engine.session(&suite).unwrap();

    let base = [3.0, 1.0, 0.0, 2.0];
    let reference = serde_json::to_string(&session.co_optimize(&base).unwrap()).unwrap();
    let store = engine.store().unwrap();
    assert_eq!(store.entries(Some("co")).len(), 1, "exactly one cold compute");

    // power-of-two factors rescale exactly under IEEE-754 normalisation —
    // including huge (2^500) and tiny (2^-500) ones
    let guests_before = guest_instructions_executed();
    for k in [0.5, 2.0, 65536.0, 2.0f64.powi(500), 2.0f64.powi(-500)] {
        let scaled: Vec<f64> = base.iter().map(|w| w * k).collect();
        let outcome = serde_json::to_string(&session.co_optimize(&scaled).unwrap()).unwrap();
        assert_eq!(outcome, reference, "k = {k} must be byte-identical to the base mix");
    }
    assert_eq!(
        store.entries(Some("co")).len(),
        1,
        "every scalar multiple must land on the single existing store entry"
    );
    assert_eq!(
        guest_instructions_executed(),
        guests_before,
        "scalar-multiple re-asks must not recompute anything"
    );

    // and a population of scalar multiples collapses onto one unique mix
    let profiles: Vec<MixProfile> = [1.0, 4.0, 2.0f64.powi(120)]
        .iter()
        .enumerate()
        .map(|(i, &k)| MixProfile {
            name: format!("tenant-{i}"),
            weights: base.iter().map(|w| w * k).collect(),
        })
        .collect();
    let outcome = session.population(&profiles, TOLERANCE_PCT).unwrap();
    assert_eq!(outcome.unique.len(), 1, "scalar multiples must dedup to one unique mix");
    assert_eq!(outcome.frontier.len(), 1);
    assert_eq!(store.entries(Some("co")).len(), 1, "the population reused the same entry");
    assert!(outcome.tenants.iter().all(|t| t.regret_pct == 0.0));

    let _ = std::fs::remove_dir_all(&dir);
}

/// Seeded power-of-two exponent in `[-60, 60]`, plus the extremes the
/// explicit test above pins (`±500`).
fn pow2_from(seed: u64) -> f64 {
    let e = (seed % 121) as i32 - 60;
    2.0f64.powi(e)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `canonical_shares(k·mix)` is bit-identical to `canonical_shares(mix)`
    /// for any power-of-two `k` — the pure-function core of the store-entry
    /// dedup the tests above counter-assert.
    #[test]
    fn canonical_shares_are_invariant_under_power_of_two_scaling(seed in any::<u64>()) {
        let mut state = seed;
        let mut split = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mix: Vec<f64> = loop {
            let w: Vec<f64> = (0..4).map(|_| (split() % 9) as f64).collect();
            if w.iter().any(|&x| x > 0.0) {
                break w;
            }
        };
        let k = pow2_from(split());
        let scaled: Vec<f64> = mix.iter().map(|w| w * k).collect();
        let bits = |shares: &[f64]| shares.iter().map(|s| s.to_bits()).collect::<Vec<_>>();
        let a = canonical_shares(&mix).unwrap();
        let b = canonical_shares(&scaled).unwrap();
        prop_assert_eq!(
            bits(&a),
            bits(&b),
            "k = {} must rescale exactly under normalisation", k
        );
    }
}
