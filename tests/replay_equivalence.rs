//! Replay-equivalence contract: for every trace-invariant perturbation, the
//! trace-driven replay engine must reproduce the full cycle-accurate
//! simulator's `cycles` and cache statistics *bit-identically* — on every
//! workload of the paper's suite.  This is the property the fast measurement
//! path in `autoreconf::measure` and the Figure 2 sweep rely on.

use std::sync::OnceLock;

use liquid_autoreconf::apps::{benchmark_suite, Scale};
use liquid_autoreconf::isa::Program;
use liquid_autoreconf::sim::{
    self, CacheConfig, Divider, LeonConfig, Multiplier, ReplacementPolicy, SimError, Trace,
};
use proptest::prelude::*;

const MAX_CYCLES: u64 = 400_000_000;

/// A grid of trace-invariant configurations: cache geometries × replacement
/// policies × latency/decode options, all derived from the base config.
fn trace_invariant_grid() -> Vec<LeonConfig> {
    let base = LeonConfig::base();
    let mut grid = Vec::new();

    // d-cache and i-cache geometry sweep (the Figure 2 axes)
    for (ways, replacement) in [
        (1u8, ReplacementPolicy::Random),
        (2, ReplacementPolicy::Random),
        (2, ReplacementPolicy::Lrr),
        (2, ReplacementPolicy::Lru),
        (4, ReplacementPolicy::Lru),
    ] {
        for way_kb in [1u32, 4, 16] {
            for line_words in [4u8, 8] {
                let mut c = base;
                c.dcache.ways = ways;
                c.dcache.way_kb = way_kb;
                c.dcache.line_words = line_words;
                c.dcache.replacement = replacement;
                grid.push(c);

                let mut c = base;
                c.icache.ways = ways;
                c.icache.way_kb = way_kb;
                c.icache.line_words = line_words;
                c.icache.replacement = replacement;
                grid.push(c);
            }
        }
    }

    // integer-unit timing options
    for multiplier in [
        Multiplier::None,
        Multiplier::Iterative,
        Multiplier::M16x16Pipelined,
        Multiplier::M32x32,
    ] {
        let mut c = base;
        c.iu.multiplier = multiplier;
        grid.push(c);
    }
    let mut c = base;
    c.iu.divider = sim::Divider::None;
    grid.push(c);
    let mut c = base;
    c.iu.load_delay = 2;
    grid.push(c);
    let mut c = base;
    c.iu.fast_jump = false;
    c.iu.fast_decode = false;
    c.iu.icc_hold = false;
    grid.push(c);
    let mut c = base;
    c.dcache_fast_read = true;
    c.dcache_fast_write = true;
    grid.push(c);

    // register windows: parametric save/restore events in the trace make
    // these replayable too (the paper's x30–x46 group)
    for windows in [2u8, 4, 16, 24, 32] {
        let mut c = base;
        c.iu.reg_windows = windows;
        grid.push(c);
    }

    grid.retain(|c| c.validate().is_ok());
    grid
}

#[test]
fn replay_matches_full_simulation_for_every_workload_and_perturbation() {
    let base = LeonConfig::base();
    for workload in benchmark_suite(Scale::Tiny) {
        let program = workload.build();
        let (_, trace) = sim::capture(&base, &program, MAX_CYCLES).unwrap();
        let mut checked = 0;
        for config in trace_invariant_grid() {
            let full = sim::simulate(&config, &program, MAX_CYCLES).unwrap();
            let replayed = sim::replay(&trace, &config, MAX_CYCLES).unwrap();
            assert_eq!(
                replayed.cycles,
                full.stats.cycles,
                "{}: cycle mismatch on {config:?}",
                workload.name()
            );
            assert_eq!(
                replayed.icache,
                full.stats.icache,
                "{}: icache stats mismatch on {config:?}",
                workload.name()
            );
            assert_eq!(
                replayed.dcache,
                full.stats.dcache,
                "{}: dcache stats mismatch on {config:?}",
                workload.name()
            );
            // the whole Stats block must agree, not just the headline numbers
            assert_eq!(replayed, full.stats, "{}: stats mismatch", workload.name());
            checked += 1;
        }
        assert!(checked > 60, "expected a meaningful grid, checked only {checked}");
    }
}

#[test]
fn replay_rejects_invalid_configurations_like_the_simulator() {
    let base = LeonConfig::base();
    let suite = benchmark_suite(Scale::Tiny);
    let program = suite[3].build(); // Arith: smallest program
    let (_, trace) = sim::capture(&base, &program, MAX_CYCLES).unwrap();
    let mut c = base;
    c.dcache.way_kb = 3; // structurally invalid
    assert!(matches!(sim::replay(&trace, &c, MAX_CYCLES), Err(SimError::InvalidConfig(_))));
}

/// One captured (program, trace) per suite workload, shared by every
/// property-test case (capture is the expensive part and is config-free).
fn captured_suite() -> &'static Vec<(String, Program, Trace)> {
    static SUITE: OnceLock<Vec<(String, Program, Trace)>> = OnceLock::new();
    SUITE.get_or_init(|| {
        benchmark_suite(Scale::Tiny)
            .iter()
            .map(|w| {
                let program = w.build();
                let (_, trace) = sim::capture(&LeonConfig::base(), &program, MAX_CYCLES).unwrap();
                (w.name().to_string(), program, trace)
            })
            .collect()
    })
}

/// Decode a seed into a *structurally valid* configuration covering the
/// whole Figure 1 space: random cache geometries (ways × way size × line
/// size × a replacement policy valid for that associativity) for both
/// caches, plus every IU option.  Validity holds by construction, so the
/// property test explores the full space with zero rejected cases.
fn config_from_seed(seed: u64) -> LeonConfig {
    let mut state = seed;
    let mut pick = move |n: u64| -> u64 {
        // splitmix64 step: decorrelates the successive field draws
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) % n
    };

    let mut cache = |c: &mut CacheConfig| {
        c.ways = 1 + pick(4) as u8;
        c.way_kb = CacheConfig::VALID_WAY_KB[pick(7) as usize];
        c.line_words = if pick(2) == 0 { 4 } else { 8 };
        c.replacement = match c.ways {
            1 => ReplacementPolicy::Random,
            2 => [ReplacementPolicy::Random, ReplacementPolicy::Lrr, ReplacementPolicy::Lru]
                [pick(3) as usize],
            _ => [ReplacementPolicy::Random, ReplacementPolicy::Lru][pick(2) as usize],
        };
    };

    let mut config = LeonConfig::base();
    cache(&mut config.icache);
    cache(&mut config.dcache);
    config.dcache_fast_read = pick(2) == 1;
    config.dcache_fast_write = pick(2) == 1;
    config.iu.fast_jump = pick(2) == 1;
    config.iu.icc_hold = pick(2) == 1;
    config.iu.fast_decode = pick(2) == 1;
    config.iu.load_delay = 1 + pick(2) as u8;
    config.iu.reg_windows = (2 + pick(31)) as u8; // 2..=32
    config.iu.divider = [Divider::Radix2, Divider::None][pick(2) as usize];
    config.iu.multiplier = Multiplier::ALL[pick(7) as usize];
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generalisation of the fixed grid above: on *any* valid configuration
    /// geometry, replay of the shared base trace must be bit-identical to a
    /// full cycle-accurate simulation — for every workload of the suite.
    #[test]
    fn replay_matches_full_simulation_on_random_geometries(seed in any::<u64>()) {
        let config = config_from_seed(seed);
        prop_assert!(config.validate().is_ok(), "decoder must only produce valid configs");
        for (name, program, trace) in captured_suite() {
            let full = sim::simulate(&config, program, MAX_CYCLES).unwrap();
            let replayed = sim::replay(trace, &config, MAX_CYCLES).unwrap();
            prop_assert_eq!(
                &replayed,
                &full.stats,
                "{}: replay diverged from full simulation on {:?}",
                name,
                config
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The one-pass batched engine against the anchor above: for a random
    /// batch of valid geometries — salted with a duplicate, the captured
    /// configuration itself and a structurally invalid config —
    /// `replay_batch` must equal element-wise `replay` bit-for-bit
    /// (successes *and* errors), on every workload, both through the serial
    /// fused walk and through the class-partitioned worker pool at
    /// `threads = 1` and `threads = 4`.
    #[test]
    fn replay_batch_matches_elementwise_replay(
        seeds in proptest::collection::vec(any::<u64>(), 1..8)
    ) {
        let mut configs: Vec<LeonConfig> =
            seeds.iter().map(|&seed| config_from_seed(seed)).collect();
        configs.push(configs[0]); // duplicate: same behavior class twice
        configs.push(LeonConfig::base()); // the captured configuration itself
        let mut invalid = LeonConfig::base();
        invalid.dcache.way_kb = 3; // structurally invalid
        configs.push(invalid);

        for (name, _program, trace) in captured_suite() {
            let elementwise: Vec<_> =
                configs.iter().map(|c| sim::replay(trace, c, MAX_CYCLES)).collect();
            let batched = sim::replay_batch(trace, &configs, MAX_CYCLES);
            prop_assert_eq!(&batched, &elementwise, "{}: serial batch diverged", name);
            for threads in [1usize, 4] {
                let pooled = liquid_autoreconf::tuner::replay_batch_indexed(
                    trace, &configs, MAX_CYCLES, threads,
                );
                prop_assert_eq!(
                    &pooled,
                    &elementwise,
                    "{}: class-partitioned batch diverged at threads={}",
                    name,
                    threads
                );
            }
        }
    }
}

#[test]
fn trace_is_compact() {
    let base = LeonConfig::base();
    for workload in benchmark_suite(Scale::Tiny) {
        let program = workload.build();
        let (run, trace) = sim::capture(&base, &program, MAX_CYCLES).unwrap();
        // run compression must account for every dynamic instruction exactly
        assert_eq!(trace.instructions(), run.stats.instructions, "{}", workload.name());
        assert!(
            (trace.len() as u64) < run.stats.instructions,
            "{}: fetch runs should compress the record stream",
            workload.name()
        );
        // 12-byte packed records plus the compact memory stream, plus the
        // v2 bookkeeping: pre-folded hit runs and per-segment checkpoints
        let mem_op_bytes = std::mem::size_of::<liquid_autoreconf::sim::trace::MemOp>();
        let seg_meta_bytes = std::mem::size_of::<liquid_autoreconf::sim::trace::SegmentMeta>();
        assert_eq!(
            trace.memory_bytes(),
            trace.len() * 12
                + trace.mem.len() * mem_op_bytes
                + trace.folded.len() * 8
                + trace.segment_count() * seg_meta_bytes,
            "{}",
            workload.name()
        );
        // the checkpoint overhead itself stays negligible next to the streams
        assert!(
            trace.segment_count() * seg_meta_bytes <= trace.memory_bytes() / 100,
            "{}: segment metadata should stay under 1% of the trace",
            workload.name()
        );
    }
}
