//! Segmentation-equivalence contract of the v2 trace format: *where* a
//! trace is cut into segments is a pure representation choice.  For any
//! segmentation — including pathological ones: one record per segment, a
//! boundary in the middle of a window-trap burst, a boundary splitting a
//! compressed run — batched replay must be bit-identical to the monolithic
//! walk, through every engine:
//!
//! * the serial fused walk (`replay_batch`),
//! * the class-span × segment worker pool (`replay_batch_indexed`) at
//!   `threads = 1` and `threads = 4`,
//! * the streaming decoder (`replay_batch_streamed`), which materialises
//!   one segment at a time from the serialised bytes,
//! * and a legacy v1 round-trip (`to_bytes_v1` → `from_bytes`), which must
//!   still decode and replay identically.
//!
//! All four workloads of the paper's suite are covered.

use std::sync::OnceLock;

use liquid_autoreconf::apps::{benchmark_suite, Scale};
use liquid_autoreconf::sim::{
    self, CacheConfig, Divider, LeonConfig, Multiplier, ReplacementPolicy, SimError,
    StreamedTrace, Trace,
};
use proptest::prelude::*;

const MAX_CYCLES: u64 = 400_000_000;

/// One captured trace per suite workload, shared by every test case
/// (capture is the expensive part and is segmentation-free).
fn captured_suite() -> &'static Vec<(String, Trace)> {
    static SUITE: OnceLock<Vec<(String, Trace)>> = OnceLock::new();
    SUITE.get_or_init(|| {
        benchmark_suite(Scale::Tiny)
            .iter()
            .map(|w| {
                let program = w.build();
                let (_, trace) = sim::capture(&LeonConfig::base(), &program, MAX_CYCLES).unwrap();
                (w.name().to_string(), trace)
            })
            .collect()
    })
}

/// splitmix64 step, the `replay_equivalence` seed-decoding idiom.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Decode a seed into a structurally valid configuration (cache geometries,
/// replacement policies, IU options, window counts) — validity holds by
/// construction, so no generated case is wasted.
fn config_from_seed(seed: u64) -> LeonConfig {
    let mut state = seed;
    let mut pick = |n: u64| splitmix(&mut state) % n;

    let mut cache = |c: &mut CacheConfig, pick: &mut dyn FnMut(u64) -> u64| {
        c.ways = 1 + pick(4) as u8;
        c.way_kb = CacheConfig::VALID_WAY_KB[pick(7) as usize];
        c.line_words = if pick(2) == 0 { 4 } else { 8 };
        c.replacement = match c.ways {
            1 => ReplacementPolicy::Random,
            2 => [ReplacementPolicy::Random, ReplacementPolicy::Lrr, ReplacementPolicy::Lru]
                [pick(3) as usize],
            _ => [ReplacementPolicy::Random, ReplacementPolicy::Lru][pick(2) as usize],
        };
    };

    let mut config = LeonConfig::base();
    cache(&mut config.icache, &mut pick);
    cache(&mut config.dcache, &mut pick);
    config.dcache_fast_read = pick(2) == 1;
    config.dcache_fast_write = pick(2) == 1;
    config.iu.load_delay = 1 + pick(2) as u8;
    config.iu.reg_windows = (2 + pick(31)) as u8; // 2..=32
    config.iu.divider = [Divider::Radix2, Divider::None][pick(2) as usize];
    config.iu.multiplier = Multiplier::ALL[pick(7) as usize];
    config
}

/// Decode a seed into a valid segmentation of a `len`-record trace: random
/// strictly increasing cut points starting at 0.  Random cuts land inside
/// window-trap bursts and compressed runs as a matter of course — exactly
/// the boundaries the checkpoint machinery has to get right.
fn boundaries_from_seed(seed: u64, len: usize) -> Vec<usize> {
    let mut state = seed;
    let cuts = 1 + (splitmix(&mut state) % 12) as usize;
    let mut boundaries = vec![0usize];
    for _ in 0..cuts {
        if len > 1 {
            boundaries.push(1 + (splitmix(&mut state) % (len as u64 - 1)) as usize);
        }
    }
    boundaries.sort_unstable();
    boundaries.dedup();
    boundaries
}

/// A batch exercising every replay tier: the captured config (closed form),
/// memory-stream classes (d-cache geometry, window count), a fetch-stream
/// class, and a structurally invalid config (the error lane).
fn mixed_batch() -> Vec<LeonConfig> {
    let base = LeonConfig::base();
    let mut dcache_small = base;
    dcache_small.dcache.way_kb = 1;
    dcache_small.iu.reg_windows = 2;
    let mut icache_small = base;
    icache_small.icache.way_kb = 1;
    let mut closed_form = base;
    closed_form.iu.multiplier = Multiplier::M32x32;
    let mut invalid = base;
    invalid.dcache.way_kb = 3;
    vec![base, dcache_small, icache_small, closed_form, invalid]
}

/// Replay `configs` through every segmented engine and check each against
/// `expected` (the monolithic-walk result for the same batch).
fn assert_all_engines_match(
    name: &str,
    tag: &str,
    seg: &Trace,
    configs: &[LeonConfig],
    expected: &[Result<sim::Stats, SimError>],
) {
    let serial = sim::replay_batch(seg, configs, MAX_CYCLES);
    assert_eq!(serial, expected, "{name}/{tag}: serial fused walk diverged");
    for threads in [1usize, 4] {
        let pooled =
            liquid_autoreconf::tuner::replay_batch_indexed(seg, configs, MAX_CYCLES, threads);
        assert_eq!(pooled, expected, "{name}/{tag}: pooled walk diverged at threads={threads}");
    }
    let streamed = StreamedTrace::open(Box::new(seg.to_bytes()))
        .unwrap_or_else(|e| panic!("{name}/{tag}: streaming open failed: {e}"));
    let streamed_results = sim::replay_batch_streamed(&streamed, configs, MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{name}/{tag}: streamed replay failed: {e}"));
    assert_eq!(streamed_results, expected, "{name}/{tag}: streamed replay diverged");
}

#[test]
fn pathological_segmentations_are_bit_identical() {
    let configs = mixed_batch();
    for (name, trace) in captured_suite() {
        let n = trace.len();
        assert!(n > 2, "{name}: trace too small to segment meaningfully");
        let expected = sim::replay_batch(trace, &configs, MAX_CYCLES);

        // one record per segment: every window-trap burst and every
        // compressed run that spans records is split somewhere
        let every_record: Vec<usize> = (0..n).collect();
        // a single segment (the monolithic layout, expressed as v2)
        let single = vec![0usize];
        // one interior cut
        let halves = vec![0usize, n / 2];
        for (tag, boundaries) in
            [("1-op", &every_record), ("single", &single), ("halves", &halves)]
        {
            let mut seg = trace.clone();
            seg.resegment_at(boundaries);
            assert_eq!(seg.segment_count(), boundaries.len(), "{name}/{tag}");
            assert_all_engines_match(name, tag, &seg, &configs, &expected);
            // the codec round-trips the segmentation, not just the records
            let decoded = Trace::from_bytes(&seg.to_bytes()).unwrap();
            assert_eq!(decoded, seg, "{name}/{tag}: codec round trip");
        }
    }
}

#[test]
fn v1_round_trip_replays_identically() {
    let configs = mixed_batch();
    for (name, trace) in captured_suite() {
        let expected = sim::replay_batch(trace, &configs, MAX_CYCLES);
        let v1 = Trace::from_bytes(&trace.to_bytes_v1())
            .unwrap_or_else(|e| panic!("{name}: v1 decode failed: {e}"));
        let replayed = sim::replay_batch(&v1, &configs, MAX_CYCLES);
        assert_eq!(replayed, expected, "{name}: v1 round trip diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For a random segmentation and a random batch of valid geometries
    /// (salted with the captured config and an invalid one), every
    /// segmented engine must be bit-identical to the monolithic walk on
    /// every workload of the suite.
    #[test]
    fn random_segmentations_replay_identically(
        seeds in proptest::collection::vec(any::<u64>(), 1..5),
        cut_seed in any::<u64>(),
    ) {
        let mut configs: Vec<LeonConfig> =
            seeds.iter().map(|&seed| config_from_seed(seed)).collect();
        configs.push(LeonConfig::base()); // the captured configuration itself
        let mut invalid = LeonConfig::base();
        invalid.dcache.way_kb = 3; // structurally invalid
        configs.push(invalid);

        for (name, trace) in captured_suite() {
            let expected = sim::replay_batch(trace, &configs, MAX_CYCLES);
            let boundaries = boundaries_from_seed(cut_seed, trace.len());
            let mut seg = trace.clone();
            seg.resegment_at(&boundaries);
            prop_assert_eq!(seg.segment_count(), boundaries.len());
            assert_all_engines_match(name, "random", &seg, &configs, &expected);
        }
    }
}
