//! Parity matrix of the pruned design-space search (DESIGN.md §13).
//!
//! The funnel's one non-negotiable promise is that pruning is invisible in
//! the answer: [`SearchMode::Pruned`] crowns the **byte-identical** optimum
//! [`SearchMode::Exhaustive`] does, for every workload, every thread count,
//! and any subspace/weighting thrown at it.  The budget half of the
//! contract (how little the funnel walks) lives in `tests/search_budget.rs`;
//! this file pins:
//!
//! * **deterministic parity** — pruned ≡ exhaustive best on all four
//!   workloads, and the full pruned outcome is byte-identical between a
//!   single-threaded and a 4-thread engine over independent stores;
//! * **randomised parity** (proptest) — random subspaces of the Figure 2
//!   grid × random non-negative weights × random workload, threads 1 vs 4,
//!   plus a prune-soundness spot-check: candidates the funnel never walked
//!   are re-measured the slow way and must not beat the crowned optimum;
//! * **store round-trip** — a warm re-search is served from disk
//!   byte-identically with zero guest instructions, zero trace walks and no
//!   funnel-counter ticks, and `store doctor` validates the `search`
//!   artifact kind (well-formed outcomes counted, a checksum-valid but
//!   malformed payload flagged and repaired away).
//!
//! Process-wide counters are read under one shared lock (the
//! `tests/batch_walk_budget.rs` pattern).

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use liquid_autoreconf::apps::{benchmark_suite, guest_instructions_executed, Scale};
use liquid_autoreconf::fpga::SynthesisModel;
use liquid_autoreconf::sim::{replay, trace_walks_performed, LeonConfig};
use liquid_autoreconf::tuner::{
    candidates_walk_validated, ArtifactStore, Campaign, FingerprintBuilder, MeasurementOptions,
    ParameterSpace, SearchMode, SearchSpace, Weights,
};
use proptest::prelude::*;

const MAX_CYCLES: u64 = 400_000_000;

static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

static SCRATCH: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "autoreconf-search-parity-{}-{}-{tag}",
        std::process::id(),
        SCRATCH.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine(threads: usize, weights: Weights, store: Option<ArtifactStore>) -> Campaign {
    let mut c = Campaign::new()
        .with_space(ParameterSpace::dcache_geometry())
        .with_weights(weights)
        .with_measurement(MeasurementOptions {
            max_cycles: MAX_CYCLES,
            threads,
            use_replay: true,
            batch_replay: true,
        });
    if let Some(s) = store {
        c = c.with_store(s);
    }
    c
}

fn json(value: &impl serde::Serialize) -> String {
    serde_json::to_string(value).expect("serialise outcome")
}

#[test]
fn pruned_equals_exhaustive_and_is_thread_count_invariant() {
    let _g = lock();
    let suite = benchmark_suite(Scale::Tiny);
    let sspace = SearchSpace::figure2();

    // independent engines over independent stores — nothing shared but the
    // deterministic inputs
    let mut per_threads: Vec<Vec<String>> = Vec::new();
    for threads in [1usize, 4] {
        let dir = scratch_dir(&format!("t{threads}"));
        let engine =
            engine(threads, Weights::runtime_optimized(), Some(ArtifactStore::open(&dir).unwrap()));
        let session = engine.session(&suite).unwrap();
        let mut outcomes = Vec::new();
        for index in 0..suite.len() {
            let pruned = session.search(index, &sspace, SearchMode::Pruned).unwrap();
            let exhaustive = session.search(index, &sspace, SearchMode::Exhaustive).unwrap();
            assert_eq!(
                json(&pruned.best),
                json(&exhaustive.best),
                "{} (threads {threads}): pruned must crown the byte-identical optimum",
                pruned.workload
            );
            assert!(
                pruned.candidates_walk_validated < exhaustive.candidates_walk_validated,
                "{}: pruning must actually skip walks",
                pruned.workload
            );
            outcomes.push(json(&pruned));
        }
        per_threads.push(outcomes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    for (index, (t1, t4)) in per_threads[0].iter().zip(&per_threads[1]).enumerate() {
        assert_eq!(
            t1, t4,
            "workload #{index}: the full pruned outcome (counters, validated set, best) \
             must not depend on the engine's thread count"
        );
    }
}

#[test]
fn warm_research_is_served_from_disk_with_zero_compute() {
    let _g = lock();
    let suite = benchmark_suite(Scale::Tiny);
    let dir = scratch_dir("warm");
    let sspace = SearchSpace::figure2();

    let cold: Vec<String> = {
        let store = ArtifactStore::open(&dir).unwrap();
        let session =
            engine(1, Weights::runtime_optimized(), Some(store.clone())).session(&suite).unwrap();
        let cold = (0..suite.len())
            .map(|i| json(&session.search(i, &sspace, SearchMode::Pruned).unwrap()))
            .collect();
        let counters = session.counters();
        assert_eq!(counters.searches_solved, suite.len(), "cold run solves every search");
        assert_eq!(counters.search_store_hits, 0);
        assert_eq!(store.entries(Some("search")).len(), suite.len());
        cold
    };

    // a fresh engine on the same store: every search must come off disk —
    // no guest execution, no trace walks, no funnel ticks, no new entries
    let store = ArtifactStore::open(&dir).unwrap();
    let session =
        engine(1, Weights::runtime_optimized(), Some(store.clone())).session(&suite).unwrap();
    let g0 = guest_instructions_executed();
    let w0 = trace_walks_performed();
    let v0 = candidates_walk_validated();
    let warm: Vec<String> = (0..suite.len())
        .map(|i| json(&session.search(i, &sspace, SearchMode::Pruned).unwrap()))
        .collect();
    assert_eq!(warm, cold, "warm re-search must be byte-identical to the cold run");
    assert_eq!(guest_instructions_executed() - g0, 0, "warm re-search executes nothing");
    assert_eq!(trace_walks_performed() - w0, 0, "warm re-search walks no trace");
    assert_eq!(candidates_walk_validated() - v0, 0, "funnel counters only tick cold");
    let counters = session.counters();
    assert_eq!(counters.searches_solved, 0);
    assert_eq!(counters.search_store_hits, suite.len());
    assert_eq!(
        store.entries(Some("search")).len(),
        suite.len(),
        "a warm re-search adds no entries"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_doctor_validates_and_repairs_the_search_kind() {
    let _g = lock();
    let suite = benchmark_suite(Scale::Tiny);
    let dir = scratch_dir("doctor");
    let store = ArtifactStore::open(&dir).unwrap();
    {
        let session =
            engine(1, Weights::runtime_optimized(), Some(store.clone())).session(&suite).unwrap();
        session.search(0, &SearchSpace::figure2(), SearchMode::Pruned).unwrap();
    }

    let report = store.doctor(false).unwrap();
    assert!(report.is_clean(), "a freshly written search entry is clean:\n{}", report.render());
    assert_eq!(report.search_entries, 1, "the well-formed outcome is counted");
    assert_eq!(report.search_payload_errors, 0);

    // a valid envelope around a payload that is *not* a SearchOutcome: the
    // checksum vouches for the bytes, so only the doctor's typed search
    // pass can catch it
    let key = FingerprintBuilder::new().str("malformed-search-entry").finish();
    store.save("search", key, b"{\"not\":\"a search outcome\"}").unwrap();
    let report = store.doctor(false).unwrap();
    assert!(!report.is_clean(), "a malformed search payload must fail the doctor");
    assert_eq!(report.search_entries, 1);
    assert_eq!(report.search_payload_errors, 1);

    // repair deletes the malformed entry and leaves the good one behind
    let repaired = store.doctor(true).unwrap();
    assert!(repaired.repaired);
    let report = store.doctor(false).unwrap();
    assert!(report.is_clean(), "after repair:\n{}", report.render());
    assert_eq!(report.search_entries, 1, "the well-formed outcome survives repair");
    assert_eq!(report.search_payload_errors, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

/// splitmix64 — the repo's standard seeded generator for derived test inputs.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random subspace × random weights × random workload: pruned ≡
    /// exhaustive bit-for-bit, thread counts 1 and 4 agree on the whole
    /// outcome, and no pruned candidate measures better than the optimum.
    #[test]
    fn pruned_search_matches_exhaustive(seed in any::<u64>()) {
        let _g = lock();
        let mut state = seed;
        let full = SearchSpace::figure2();

        // a random non-empty subset of the Figure 2 grid, in a random order
        // (subset() canonicalises, so order must not matter either)
        let keep: Vec<usize> =
            (0..full.len()).filter(|_| splitmix(&mut state) % 3 != 0).collect();
        let sub = if keep.is_empty() {
            full.subset(&[splitmix(&mut state) as usize % full.len()], "sub")
        } else {
            full.subset(&keep, "sub")
        };

        // non-negative weights spanning runtime-heavy to resource-heavy
        let weights = Weights {
            runtime: (splitmix(&mut state) % 2000) as f64 / 10.0,
            resources: (splitmix(&mut state) % 80) as f64 / 10.0,
        };
        let suite = benchmark_suite(Scale::Tiny);
        let workload = (splitmix(&mut state) as usize) % suite.len();

        let dir1 = scratch_dir("prop-t1");
        let dir4 = scratch_dir("prop-t4");
        let e1 = engine(1, weights, Some(ArtifactStore::open(&dir1).unwrap()));
        let e4 = engine(4, weights, Some(ArtifactStore::open(&dir4).unwrap()));
        let s1 = e1.session(&suite).unwrap();
        let s4 = e4.session(&suite).unwrap();

        let pruned = s1.search(workload, &sub, SearchMode::Pruned).unwrap();
        let exhaustive = s1.search(workload, &sub, SearchMode::Exhaustive).unwrap();
        prop_assert_eq!(
            json(&pruned.best),
            json(&exhaustive.best),
            "w={:?} workload={} |sub|={}: pruned must match exhaustive",
            weights, workload, sub.len()
        );
        let pruned4 = s4.search(workload, &sub, SearchMode::Pruned).unwrap();
        prop_assert_eq!(
            json(&pruned),
            json(&pruned4),
            "the full outcome must be thread-count invariant"
        );

        // prune-soundness spot-check: re-measure (the slow way) a few
        // feasible candidates the funnel never walked — pruning one that
        // beats the crowned optimum would be a soundness bug, not a tuning
        // matter
        if let Some(best) = &pruned.best {
            let base = LeonConfig::base();
            let model = SynthesisModel::default();
            let device = model.device();
            let entry = s1.trace(workload).unwrap();
            let walked: BTreeSet<usize> = pruned.validated.iter().copied().collect();
            let mut checked = 0;
            for (pos, selected) in sub.candidates.iter().enumerate() {
                if checked == 3 {
                    break;
                }
                if walked.contains(&pos) {
                    continue;
                }
                let config = sub.space.apply(&base, selected);
                let report = model.synthesize(&config);
                if !(report.fits && config.validate().is_ok()) {
                    continue;
                }
                let stats = replay(&entry.trace, &config, MAX_CYCLES).unwrap();
                let delta = (stats.cycles as f64 - entry.base_cycles as f64) * 100.0
                    / entry.base_cycles as f64;
                let resource = report.luts as f64 * 100.0 / device.luts as f64
                    + report.bram_blocks as f64 * 100.0 / device.bram_blocks as f64;
                let objective = weights.objective(delta, resource);
                prop_assert!(
                    objective >= best.objective - 1e-9,
                    "pruned candidate #{} measures {} — better than the optimum {}",
                    pos, objective, best.objective
                );
                checked += 1;
            }
        }

        let _ = std::fs::remove_dir_all(&dir1);
        let _ = std::fs::remove_dir_all(&dir4);
    }
}
