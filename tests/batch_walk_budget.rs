//! Trace-walk budget contract of the batched replay engine.
//!
//! The batched engine's reason to exist is that a sweep of N configurations
//! over one trace must no longer decode the op stream N times.  These tests
//! pin that with the process-wide `leon_sim::trace_walks_performed` counter:
//!
//! * the 52-variable cost table performs **at most one walk per distinct
//!   behavior class** — and exactly one pass per trace stream when the
//!   classes are not partitioned across workers (`threads = 1`);
//! * the Figure 2 exhaustive d-cache sweep collapses to a single
//!   memory-stream pass, where the per-config kernel pays one walk per
//!   feasible non-base geometry;
//! * the segmented engine's finer-grained `trace_segments_walked` counter
//!   stays within classes × segments (parallel table) and hits exactly one
//!   tick per segment for the fused Figure 2 pass;
//! * both engines produce byte-identical tables/sweeps (`serde_json`
//!   compared), so the walk budget is a pure cost change.
//!
//! The walk counter is process-global, so every test in this binary takes
//! one shared lock around its delta measurements (the
//! `tests/incremental_store.rs` pattern).

use std::collections::HashSet;
use std::sync::Mutex;

use liquid_autoreconf::apps::{capture_verified, Blastn, Scale};
use liquid_autoreconf::fpga::SynthesisModel;
use liquid_autoreconf::sim::{
    trace_segments_walked, trace_walks_performed, CacheConfig, LeonConfig,
};
use liquid_autoreconf::tuner::{
    dcache_exhaustive_traced, dcache_exhaustive_traced_per_config, measure_cost_table_traced,
    MeasurementOptions, ParameterSpace,
};

const MAX_CYCLES: u64 = 400_000_000;

/// Serialises this binary's counter-delta measurements.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn options(threads: usize, batch_replay: bool) -> MeasurementOptions {
    MeasurementOptions { max_cycles: MAX_CYCLES, threads, use_replay: true, batch_replay }
}

/// Independently re-derive the batch's behavior classes from the parameter
/// space: every distinct (d-cache geometry, window count) pair and every
/// distinct i-cache geometry — over perturbations *and* enabler references —
/// that differs from the capturing configuration.  Also counts the timed
/// configurations that would walk at least one stream under the per-config
/// engine.
fn distinct_classes(
    space: &ParameterSpace,
    base: &LeonConfig,
) -> (HashSet<(CacheConfig, u8)>, HashSet<CacheConfig>, usize) {
    let mut mem: HashSet<(CacheConfig, u8)> = HashSet::new();
    let mut fetch: HashSet<CacheConfig> = HashSet::new();
    let mut walked_configs: HashSet<LeonConfig> = HashSet::new();
    for var in space.variables() {
        let mut reference = *base;
        if let Some(enabler) = &var.enabler {
            enabler.apply(&mut reference);
        }
        let mut perturbed = reference;
        var.change.apply(&mut perturbed);
        let mut timed = vec![perturbed];
        if var.enabler.is_some() {
            timed.push(reference);
        }
        for config in timed {
            let mut walks = false;
            if config.dcache != base.dcache || config.iu.reg_windows != base.iu.reg_windows {
                mem.insert((config.dcache, config.iu.reg_windows));
                walks = true;
            }
            if config.icache != base.icache {
                fetch.insert(config.icache);
                walks = true;
            }
            if walks {
                walked_configs.insert(config);
            }
        }
    }
    (mem, fetch, walked_configs.len())
}

#[test]
fn cost_table_walks_at_most_once_per_behavior_class() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    let workload = Blastn::scaled(Scale::Tiny);
    let base = LeonConfig::base();
    let model = SynthesisModel::default();
    let space = ParameterSpace::paper();
    let (_, trace) = capture_verified(&workload, &base, MAX_CYCLES).unwrap();

    let (mem_classes, fetch_classes, walked_configs) = distinct_classes(&space, &base);
    let classes = mem_classes.len() + fetch_classes.len();
    assert!(classes > 0, "the paper space must contain cache perturbations");
    assert!(
        classes <= walked_configs,
        "classes ({classes}) can never exceed walked configurations ({walked_configs})"
    );

    // threads = 1: the whole table fuses into one pass per trace stream
    let before = trace_walks_performed();
    let serial =
        measure_cost_table_traced(&space, &workload, &base, &model, &options(1, true), &trace)
            .unwrap();
    let serial_walks = trace_walks_performed() - before;
    assert!(
        serial_walks <= 2,
        "threads=1 must fuse all classes into one pass per stream, walked {serial_walks}"
    );

    // threads = 4: classes are partitioned, never duplicated — and the
    // segmented engine ticks at most one segment walk per class × segment
    // unit (each class-span walker visits every segment exactly once)
    let segments = trace.segment_count() as u64;
    let before = trace_walks_performed();
    let seg_before = trace_segments_walked();
    let parallel =
        measure_cost_table_traced(&space, &workload, &base, &model, &options(4, true), &trace)
            .unwrap();
    let parallel_walks = trace_walks_performed() - before;
    let parallel_segment_walks = trace_segments_walked() - seg_before;
    assert!(
        parallel_walks <= classes as u64,
        "batched table must walk at most once per class ({classes}), walked {parallel_walks}"
    );
    assert!(
        parallel_segment_walks <= classes as u64 * segments,
        "segment walks ({parallel_segment_walks}) must not exceed classes ({classes}) × \
         segments ({segments})"
    );

    // the per-config engine pays one walk per walked configuration — the
    // cost the batched engine amortises away
    let before = trace_walks_performed();
    let per_config =
        measure_cost_table_traced(&space, &workload, &base, &model, &options(1, false), &trace)
            .unwrap();
    let per_config_walks = trace_walks_performed() - before;
    assert!(
        per_config_walks >= classes as u64,
        "per-config engine must walk at least once per class ({classes}), \
         walked {per_config_walks}"
    );
    assert!(
        serial_walks < per_config_walks,
        "batching must reduce the walk count ({serial_walks} vs {per_config_walks})"
    );

    // and the budget is a pure cost change: all three tables byte-identical
    let serial_json = serde_json::to_string(&serial).unwrap();
    assert_eq!(serial_json, serde_json::to_string(&parallel).unwrap());
    assert_eq!(serial_json, serde_json::to_string(&per_config).unwrap());
}

#[test]
fn fig2_sweep_collapses_to_one_memory_stream_pass() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    let workload = Blastn::scaled(Scale::Tiny);
    let base = LeonConfig::base();
    let model = SynthesisModel::default();
    let (_, trace) = capture_verified(&workload, &base, MAX_CYCLES).unwrap();

    let before = trace_walks_performed();
    let seg_before = trace_segments_walked();
    let batched = dcache_exhaustive_traced(&trace, &base, &model, MAX_CYCLES, 1).unwrap();
    let batched_walks = trace_walks_performed() - before;
    let batched_segment_walks = trace_segments_walked() - seg_before;
    assert_eq!(
        batched_walks, 1,
        "the sweep changes only the d-cache: one fused memory-stream pass"
    );
    assert_eq!(
        batched_segment_walks,
        trace.segment_count() as u64,
        "that one pass visits each of the trace's segments exactly once"
    );

    let before = trace_walks_performed();
    let per_config =
        dcache_exhaustive_traced_per_config(&trace, &base, &model, MAX_CYCLES, 1).unwrap();
    let per_config_walks = trace_walks_performed() - before;
    let walked_rows =
        batched.iter().filter(|r| r.fits && (r.ways, r.way_kb) != (1, 4)).count() as u64;
    assert_eq!(
        per_config_walks, walked_rows,
        "per-config sweep walks once per feasible non-base geometry"
    );
    assert!(per_config_walks > batched_walks);

    assert_eq!(
        serde_json::to_string(&batched).unwrap(),
        serde_json::to_string(&per_config).unwrap(),
        "both engines must produce identical Figure 2 rows"
    );
}
