//! Reproduction of the paper's Section 5 validation: the optimiser's choice
//! under the parameter-independence assumption is compared against the
//! exhaustive optimum on the dcache geometry sub-space (Figures 2–4).

use liquid_autoreconf::fpga::SynthesisModel;
use liquid_autoreconf::prelude::*;
use liquid_autoreconf::tuner::experiments::{fig2, fig3, fig4, ExperimentOptions};
use liquid_autoreconf::tuner::{best_runtime_row, dcache_exhaustive};

fn options() -> ExperimentOptions {
    ExperimentOptions::test_sized()
}

#[test]
fn figure2_optimum_beats_or_matches_the_base_configuration() {
    let r = fig2(&options()).expect("figure 2 runs");
    assert_eq!(r.rows.len(), 28);
    assert_eq!(r.rows.iter().filter(|row| row.fits).count(), 19);
    assert!(r.optimal_gain_pct() >= 0.0);
    // the optimum must be a feasible configuration
    assert!(r.optimal.fits);
    assert!(r.optimal.bram_pct <= 100);
}

#[test]
fn figure3_optimizer_is_near_optimal_for_blastn() {
    // the paper reports a 0.02% gap between the optimiser's dcache choice and
    // the exhaustive optimum; allow a modest tolerance at test scale
    let r = fig3(&options()).expect("figure 3 runs");
    let gap = r.comparison.gap_pct();
    assert!(gap >= -1e-9, "the optimiser cannot beat the exhaustive optimum (gap {gap})");
    assert!(gap < 1.0, "optimiser choice must be within 1% of the exhaustive optimum, gap {gap:.3}%");
    // it evaluated only the one-at-a-time configurations (base + 8)
    assert_eq!(r.comparison.evaluated.len(), 9);
}

#[test]
fn figure4_other_benchmarks_match_or_do_not_care() {
    let r = fig4(&options()).expect("figure 4 runs");
    assert_eq!(r.comparisons.len(), 3);
    for c in &r.comparisons {
        if c.no_effect {
            // Arith: "No effect, as application is not data intensive"
            assert_eq!(c.workload, "Arith");
            continue;
        }
        let gap = c.gap_pct();
        assert!(
            gap < 1.5,
            "{}: optimiser within 1.5% of the exhaustive dcache optimum (gap {gap:.3}%)",
            c.workload
        );
    }
    // Arith is present and flagged as insensitive
    assert!(r.comparisons.iter().any(|c| c.workload == "Arith" && c.no_effect));
}

#[test]
fn points_in_between_are_reachable() {
    // Section 5, "Further Observations": the optimiser can select
    // configurations that were never measured directly (e.g. 2 sets of 16 KB
    // when only single-parameter perturbations were measured).  Verify that
    // such combined selections are valid, buildable configurations.
    let space = liquid_autoreconf::tuner::ParameterSpace::dcache_geometry();
    let base = LeonConfig::base();
    let combined = space.apply(&base, &[12, 18]); // 2 sets + 16 KB per set
    assert_eq!(combined.dcache.ways, 2);
    assert_eq!(combined.dcache.way_kb, 16);
    assert!(combined.validate().is_ok());
    let report = SynthesisModel::default().synthesize(&combined);
    assert!(report.fits, "the 2x16 KB point in between must be buildable");
    // and it runs correctly
    let run = run_verified(&Blastn::scaled(Scale::Tiny), &combined, 200_000_000).unwrap();
    assert!(run.stats.cycles > 0);
}

#[test]
fn exhaustive_sweep_and_optimizer_agree_on_total_capacity_for_drr() {
    // DRR's optimum in the paper is 32 KB of total dcache (1x32 exhaustively,
    // 2x16 from the optimiser).  At any scale both methods should land on the
    // same *total* capacity even if the geometry differs.
    let w = Drr::scaled(Scale::Tiny);
    let rows = dcache_exhaustive(&w, &LeonConfig::base(), &SynthesisModel::default(), 400_000_000, 0)
        .unwrap();
    let best = best_runtime_row(&rows).unwrap();
    let comparison = fig4(&options()).unwrap();
    let drr = comparison.comparisons.iter().find(|c| c.workload == "DRR").unwrap();
    let optimizer_total = drr.optimizer_choice.0 as u32 * drr.optimizer_choice.1;
    // allow one binary step of difference in total capacity
    let ratio = optimizer_total.max(best.total_kb()) as f64 / optimizer_total.min(best.total_kb()).max(1) as f64;
    assert!(
        ratio <= 2.0,
        "exhaustive total {} KB vs optimiser total {} KB differ too much",
        best.total_kb(),
        optimizer_total
    );
}
