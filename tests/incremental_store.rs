//! Incremental campaign-store contracts:
//!
//! * **round-trip equivalence** — a campaign served from a warm store is
//!   byte-identical (compared as `serde_json` strings) to a cold run and to
//!   a store-less run, for a mixed co-optimization and for every degenerate
//!   per-workload mix, at `threads = 1` and `threads = 4`;
//! * **laziness** — a warm run whose co-optimization entry hits reads zero
//!   trace payload bytes and executes zero guest instructions (both
//!   counter-asserted), pinning the `Scale::Medium` warm-run win;
//! * **corruption/eviction safety** — truncated or bit-flipped entries are
//!   detected (checksum/version validation), recomputed, and the final
//!   results still match the cold run;
//! * **invalidation precision** — updating one workload of a 4-workload mix
//!   re-captures exactly one trace and re-measures exactly one cost table;
//!   the other three are served from the store;
//! * **store lifecycle invariants** (property-tested) — after `gc(budget)`
//!   the store fits the budget or only pinned entries remain, eviction
//!   strictly follows the access stamps, and the manifest matches the
//!   directory under random insert/load/corrupt/pin/gc sequences, with
//!   `doctor --repair` restoring a clean store.
//!
//! The campaign tests share one process-wide lock: the guest-instruction and
//! trace-byte assertions read process-global counters, and serialising the
//! campaign runs keeps every delta attributable.  The store property tests
//! use their own scratch directories and need no lock.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use liquid_autoreconf::apps::{
    benchmark_suite, guest_instructions_executed, trace_payload_bytes_read, Arith, Scale,
    Workload,
};
use liquid_autoreconf::isa::Program;
use liquid_autoreconf::tuner::{
    ArtifactStore, Campaign, CampaignResult, Fingerprint, FingerprintBuilder, MeasurementOptions,
    ParameterSpace, Weights,
};

const MAX_CYCLES: u64 = 400_000_000;
const MIX: [f64; 4] = [0.4, 0.3, 0.2, 0.1];

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

static SCRATCH: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "autoreconf-incremental-{}-{}-{tag}",
        std::process::id(),
        SCRATCH.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine(threads: usize, store: Option<ArtifactStore>) -> Campaign {
    let mut c = Campaign::new()
        .with_space(ParameterSpace::dcache_geometry())
        .with_weights(Weights::runtime_optimized())
        .with_measurement(MeasurementOptions { max_cycles: MAX_CYCLES, threads, use_replay: true, batch_replay: true });
    if let Some(s) = store {
        c = c.with_store(s);
    }
    c
}

fn json(result: &CampaignResult) -> String {
    serde_json::to_string(result).unwrap()
}

#[test]
fn warm_store_runs_are_byte_identical_to_cold_and_storeless_runs() {
    let _g = lock();
    let suite = benchmark_suite(Scale::Tiny);
    let reference = json(&engine(1, None).run(&suite, &MIX).unwrap());

    let dir = scratch_dir("roundtrip");
    let store = ArtifactStore::open(&dir).unwrap();

    let cold = json(&engine(1, Some(store.clone())).run(&suite, &MIX).unwrap());
    assert_eq!(cold, reference, "a cold store run must not perturb the result");
    assert!(store.stats().writes >= 16, "cold run must persist 4 artifact kinds x 4 workloads");

    let warm1 = json(&engine(1, Some(store.clone())).run(&suite, &MIX).unwrap());
    let warm4 = json(&engine(4, Some(store.clone())).run(&suite, &MIX).unwrap());
    assert_eq!(warm1, reference, "warm (threads=1) must be byte-identical to cold");
    assert_eq!(warm4, reference, "warm (threads=4) must be byte-identical to cold");
    assert_eq!(store.stats().corrupt, 0);

    // a different cycle budget is a different measurement contract: its
    // artifacts must not be served from this store (budget-exhausting runs
    // error/truncate, so cross-budget reuse could diverge from a cold run)
    let other_budget = Campaign::new()
        .with_space(ParameterSpace::dcache_geometry())
        .with_weights(Weights::runtime_optimized())
        .with_measurement(MeasurementOptions {
            max_cycles: MAX_CYCLES * 2,
            threads: 2,
            use_replay: true,
            batch_replay: true,
        })
        .with_store(store.clone());
    let session = other_budget.session(&suite).unwrap();
    session.materialize_all().unwrap();
    let c = session.counters();
    assert_eq!(c.trace_store_hits, 0, "a changed budget must miss every stored artifact");
    assert_eq!(c.trace_captures, 4);
    drop(session);

    // every degenerate per-workload mix, warm vs. store-less
    let warm_session = engine(2, Some(store.clone())).session(&suite).unwrap();
    let plain_session = engine(2, None).session(&suite).unwrap();
    for k in 0..suite.len() {
        let mut mix = vec![0.0; suite.len()];
        mix[k] = 1.0;
        assert_eq!(
            json(&warm_session.result(&mix).unwrap()),
            json(&plain_session.result(&mix).unwrap()),
            "degenerate mix on workload {k} must match without a store"
        );
    }
    assert_eq!(
        warm_session.counters().trace_captures,
        0,
        "the warm session must never capture, even across four degenerate co solves"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_co_hit_reads_zero_trace_payload_bytes_and_executes_no_guest_code() {
    let _g = lock();
    let suite = benchmark_suite(Scale::Tiny);
    let dir = scratch_dir("lazy");
    let store = ArtifactStore::open(&dir).unwrap();

    // cold: populates every artifact including the co outcome for MIX
    let cold = json(&engine(2, Some(store.clone())).run(&suite, &MIX).unwrap());

    // warm run with a co hit: the whole CampaignResult is assembled from the
    // co entry plus the small JSON artifacts — ZERO trace payload bytes and
    // ZERO guest instructions (this is the ~0.4 s Scale::Medium win; the
    // store_lazy benchmark quantifies it, this test pins the mechanism)
    let warm_store = ArtifactStore::open(&dir).unwrap();
    let guests_before = guest_instructions_executed();
    let trace_bytes_before = trace_payload_bytes_read();
    let warm = json(&engine(2, Some(warm_store.clone())).run(&suite, &MIX).unwrap());
    assert_eq!(
        trace_payload_bytes_read() - trace_bytes_before,
        0,
        "a warm co-hit campaign must read zero trace payload bytes"
    );
    assert_eq!(
        guest_instructions_executed() - guests_before,
        0,
        "a warm co-hit campaign must execute zero guest instructions"
    );
    assert_eq!(warm, cold, "the lazy warm result is still byte-identical");
    let s = warm_store.stats();
    assert!(s.hits >= 13, "tables/sweeps/optima/co must still be served from the store: {s:?}");
    assert_eq!(s.corrupt, 0);

    // sanity check that the counter actually measures trace reads: an eager
    // session (PR-3 semantics) on the same store DOES read trace payloads,
    // still without executing guest code
    let eager = engine(2, Some(ArtifactStore::open(&dir).unwrap())).session(&suite).unwrap();
    eager.materialize_all().unwrap();
    assert!(
        trace_payload_bytes_read() > trace_bytes_before,
        "an eager warm session must read the stored trace payloads"
    );
    assert_eq!(guest_instructions_executed(), guests_before);
    assert_eq!(eager.counters().trace_store_hits, 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_entries_are_detected_and_recomputed() {
    let _g = lock();
    let suite = benchmark_suite(Scale::Tiny);
    let dir = scratch_dir("corruption");
    let store = ArtifactStore::open(&dir).unwrap();

    let cold = json(&engine(2, Some(store.clone())).run(&suite, &MIX).unwrap());

    // truncate a stored trace mid-payload
    let trace_file = store.entries(Some("trace"))[0].clone();
    let bytes = std::fs::read(&trace_file).unwrap();
    std::fs::write(&trace_file, &bytes[..bytes.len() / 3]).unwrap();

    // flip one bit inside a stored cost table's payload
    let table_file = store.entries(Some("table"))[1].clone();
    let mut bytes = std::fs::read(&table_file).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&table_file, &bytes).unwrap();

    // and replace a sweep entry with garbage that is not even an envelope
    let sweep_file = store.entries(Some("sweep"))[2].clone();
    std::fs::write(&sweep_file, b"not an artifact at all").unwrap();

    // an eager session dereferences every artifact, so all three damaged
    // entries are hit, detected, recomputed and re-persisted
    let warm_store = ArtifactStore::open(&dir).unwrap();
    let session = engine(2, Some(warm_store.clone())).session(&suite).unwrap();
    session.materialize_all().unwrap();
    let healed = json(&session.result(&MIX).unwrap());
    assert_eq!(healed, cold, "recomputed-after-corruption must equal the cold run");

    let stats = warm_store.stats();
    assert_eq!(stats.corrupt, 3, "all three damaged entries must be detected");
    let c = session.counters();
    assert_eq!(
        (c.trace_captures, c.table_measurements, c.sweeps_computed),
        (1, 1, 1),
        "exactly the damaged artifacts are recomputed"
    );
    assert_eq!(
        (c.trace_store_hits, c.table_store_hits, c.sweep_store_hits),
        (3, 3, 3),
        "the undamaged artifacts are served from the store"
    );
    drop(session);

    // the recompute healed the store: a fresh eager session is fully warm
    let again = engine(2, Some(ArtifactStore::open(&dir).unwrap())).session(&suite).unwrap();
    again.materialize_all().unwrap();
    assert_eq!(again.counters().trace_captures, 0);
    assert_eq!(json(&again.result(&MIX).unwrap()), cold);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `Arith` under a different registered name: same guest program, different
/// content fingerprint — the cheapest possible "this workload changed"
/// stand-in for the invalidation-precision test.
struct RetaggedArith(Arith);

impl Workload for RetaggedArith {
    fn name(&self) -> &str {
        "Arith-v2"
    }
    fn description(&self) -> &str {
        self.0.description()
    }
    fn build(&self) -> Program {
        self.0.build()
    }
    fn expected_reports(&self) -> Vec<(u16, u32)> {
        self.0.expected_reports()
    }
}

#[test]
fn update_workload_invalidates_exactly_one_entry() {
    let _g = lock();
    let suite = benchmark_suite(Scale::Tiny);
    let dir = scratch_dir("invalidation");
    let store = ArtifactStore::open(&dir).unwrap();

    // cold session (fully materialised) populates the store
    let cold_session = engine(2, Some(store.clone())).session(&suite).unwrap();
    cold_session.materialize_all().unwrap();
    let c = cold_session.counters();
    assert_eq!((c.trace_captures, c.table_measurements), (4, 4));
    assert_eq!((c.trace_store_hits, c.table_store_hits), (0, 0));
    drop(cold_session);

    // warm eager session: everything from the store
    let mut session = engine(2, Some(store.clone())).session(&suite).unwrap();
    session.materialize_all().unwrap();
    let c = session.counters();
    assert_eq!((c.trace_captures, c.table_measurements, c.sweeps_computed, c.optimizations_solved), (0, 0, 0, 0));
    assert_eq!((c.trace_store_hits, c.table_store_hits, c.sweep_store_hits, c.optimum_store_hits), (4, 4, 4, 4));

    // update one member of the mix: exactly one trace re-captured, one cost
    // table re-measured; the other three entries are not even re-read
    let replacement = RetaggedArith(Arith::scaled(Scale::Tiny));
    session.update_workload(3, &replacement).unwrap();
    let c = session.counters();
    assert_eq!(
        (c.trace_captures, c.table_measurements, c.sweeps_computed, c.optimizations_solved),
        (1, 1, 1, 1),
        "exactly one of each artifact is re-derived"
    );
    assert_eq!(
        (c.trace_store_hits, c.table_store_hits, c.sweep_store_hits, c.optimum_store_hits),
        (4, 4, 4, 4),
        "the unchanged workloads' artifacts are untouched"
    );
    assert_eq!(session.names()[3], "Arith-v2");

    // the updated session equals a from-scratch (store-less) session over
    // the updated suite, byte for byte
    let mut updated_suite = benchmark_suite(Scale::Tiny);
    updated_suite[3] = Box::new(RetaggedArith(Arith::scaled(Scale::Tiny)));
    let fresh = engine(2, None).session(&updated_suite).unwrap();
    assert_eq!(
        json(&session.result(&MIX).unwrap()),
        json(&fresh.result(&MIX).unwrap()),
        "incremental update must equal a from-scratch derivation"
    );

    // a second update back to the original workload is a pure store hit
    let original = benchmark_suite(Scale::Tiny).remove(3);
    session.update_workload(3, original.as_ref()).unwrap();
    let c = session.counters();
    assert_eq!(c.trace_captures, 1, "reverting must hit the store, not recapture");
    assert_eq!(c.trace_store_hits, 5);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_runs_execute_zero_guest_instructions() {
    let _g = lock();
    let suite = benchmark_suite(Scale::Tiny);
    let dir = scratch_dir("zeroguest");
    let store = ArtifactStore::open(&dir).unwrap();

    // cold: populates the store (and obviously executes guest code)
    let before_cold = guest_instructions_executed();
    let cold = json(&engine(2, Some(store.clone())).run(&suite, &MIX).unwrap());
    assert!(
        guest_instructions_executed() > before_cold,
        "the cold run must execute guest instructions"
    );

    // warm: the whole campaign — including its per-workload pipelines and
    // the final co-optimization — must run without a single guest
    // instruction; validation is trace replay, artifacts come from disk
    let before_warm = guest_instructions_executed();
    let warm = json(&engine(2, Some(store.clone())).run(&suite, &MIX).unwrap());
    assert_eq!(
        guest_instructions_executed(),
        before_warm,
        "a warm-store campaign run must execute zero guest instructions"
    );
    assert_eq!(warm, cold);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sessions_pin_their_entries_against_gc() {
    let _g = lock();
    let suite = benchmark_suite(Scale::Tiny);
    let dir = scratch_dir("pinned");
    let store = ArtifactStore::open(&dir).unwrap();
    let campaign = engine(2, Some(store.clone()));
    let cold = json(&campaign.run(&suite, &MIX).unwrap());

    // with a session open, a zero-budget GC may evict nothing the session
    // pinned: a follow-up co-optimization still runs fully warm
    let session = campaign.session(&suite).unwrap();
    let co_warm = session.co_optimize(&MIX).unwrap(); // pins the co entry too
    let report = store.gc(0).unwrap();
    assert!(report.pinned_retained >= 17, "4 kinds x 4 workloads + co stay pinned: {report:?}");
    session.materialize_all().unwrap();
    let c = session.counters();
    assert_eq!(
        (c.trace_captures, c.table_measurements, c.sweeps_computed, c.optimizations_solved),
        (0, 0, 0, 0),
        "every pinned artifact survived the zero-budget GC"
    );
    assert_eq!(
        serde_json::to_string(&co_warm).unwrap(),
        serde_json::to_string(&session.co_optimize(&MIX).unwrap()).unwrap()
    );
    drop(session);

    // once the session closes, the same GC empties the store...
    let report = store.gc(0).unwrap();
    assert_eq!(report.bytes_after, 0, "{report:?}");
    assert!(store.entries(None).is_empty());

    // ...and the next run recomputes from scratch, byte-identically
    let recomputed = json(&campaign.run(&suite, &MIX).unwrap());
    assert_eq!(recomputed, cold);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Store lifecycle property tests (random insert/load/corrupt/pin/gc)
// ---------------------------------------------------------------------------

mod store_properties {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    const KINDS: [&str; 5] = ["trace", "table", "sweep", "optimum", "co"];

    /// One random store operation.  Slots index into the set of entries the
    /// sequence has inserted so far (modulo its size), so every operation is
    /// valid regardless of order.
    #[derive(Clone, Debug)]
    enum Op {
        Insert { kind: usize, seed: u64, size: usize },
        Load { slot: usize },
        Corrupt { slot: usize },
        Pin { slot: usize },
        Unpin { slot: usize },
        Gc { budget: u64 },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0usize..KINDS.len(), 0u64..10, 0usize..160)
                .prop_map(|(kind, seed, size)| Op::Insert { kind, seed, size }),
            (0usize..64).prop_map(|slot| Op::Load { slot }),
            (0usize..64).prop_map(|slot| Op::Corrupt { slot }),
            (0usize..64).prop_map(|slot| Op::Pin { slot }),
            (0usize..64).prop_map(|slot| Op::Unpin { slot }),
            (0u64..1200).prop_map(|budget| Op::Gc { budget }),
        ]
    }

    /// (kind, fingerprint) set parsed back from the directory's entry files.
    fn directory_ids(store: &ArtifactStore) -> BTreeSet<(String, u64)> {
        store
            .entries(None)
            .iter()
            .filter_map(|p| {
                let name = p.file_name()?.to_str()?.strip_suffix(".art")?;
                let (kind, hex) = name.rsplit_once('-')?;
                Some((kind.to_string(), u64::from_str_radix(hex, 16).ok()?))
            })
            .collect()
    }

    /// Total size of the store's entry files.
    fn entry_file_bytes(store: &ArtifactStore) -> u64 {
        store.entries(None).iter().map(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0)).sum()
    }

    /// Apply `ops` to a fresh scratch store, checking the GC invariants at
    /// every `Gc` step; returns the pin table for the end-state checks.
    fn run_ops(store: &ArtifactStore, ops: &[Op]) -> BTreeMap<(String, u64), usize> {
        let mut inserted: Vec<(String, Fingerprint)> = Vec::new();
        let mut pins: BTreeMap<(String, u64), usize> = BTreeMap::new();
        let pick = |inserted: &[(String, Fingerprint)], slot: usize| {
            if inserted.is_empty() { None } else { Some(inserted[slot % inserted.len()].clone()) }
        };
        for op in ops {
            match op {
                Op::Insert { kind, seed, size } => {
                    let kind = KINDS[*kind];
                    let key = FingerprintBuilder::new().str(kind).u64(*seed).finish();
                    let payload = vec![(*seed as u8) ^ 0x5a; *size];
                    store.save(kind, key, &payload).unwrap();
                    if !inserted.iter().any(|(k, f)| k == kind && *f == key) {
                        inserted.push((kind.to_string(), key));
                    }
                }
                Op::Load { slot } => {
                    if let Some((kind, key)) = pick(&inserted, *slot) {
                        // may be None after corruption/eviction; both fine
                        let _ = store.load(&kind, key);
                    }
                }
                Op::Corrupt { slot } => {
                    if let Some((kind, key)) = pick(&inserted, *slot) {
                        let path = store.dir().join(format!("{kind}-{key}.art"));
                        if let Ok(mut bytes) = std::fs::read(&path) {
                            if let Some(last) = bytes.last_mut() {
                                *last ^= 0x80;
                            } else {
                                bytes.push(0);
                            }
                            std::fs::write(&path, &bytes).unwrap();
                        }
                    }
                }
                Op::Pin { slot } => {
                    if let Some((kind, key)) = pick(&inserted, *slot) {
                        store.pin(&kind, key);
                        *pins.entry((kind, key.0)).or_insert(0) += 1;
                    }
                }
                Op::Unpin { slot } => {
                    if let Some((kind, key)) = pick(&inserted, *slot) {
                        store.unpin(&kind, key);
                        let id = (kind, key.0);
                        if let Some(n) = pins.get_mut(&id) {
                            *n -= 1;
                            if *n == 0 {
                                pins.remove(&id);
                            }
                        }
                    }
                }
                Op::Gc { budget } => {
                    check_gc(store, *budget, &pins);
                }
            }
        }
        pins
    }

    /// Run one GC pass and assert every invariant the ISSUE pins:
    /// budget-or-pinned, LRU eviction order, manifest ↔ directory agreement.
    fn check_gc(store: &ArtifactStore, budget: u64, pins: &BTreeMap<(String, u64), usize>) {
        let stamps: BTreeMap<(String, u64), u64> = store
            .manifest()
            .entries
            .iter()
            .map(|e| ((e.kind.clone(), e.fingerprint), e.last_access))
            .collect();
        let before = directory_ids(store);

        let report = store.gc(budget).unwrap();
        let after = directory_ids(store);

        // the headline invariant: within budget, or only pinned entries left
        let total = entry_file_bytes(store);
        assert_eq!(total, report.bytes_after, "report must describe the directory");
        if total > budget {
            assert!(
                after.iter().all(|id| pins.contains_key(id)),
                "over budget, every survivor must be pinned: {report:?}"
            );
        }

        // pinned entries are never evicted
        for id in pins.keys() {
            if before.contains(id) {
                assert!(after.contains(id), "pinned entry {id:?} was evicted");
            }
        }

        // eviction strictly follows the access stamps: every evicted
        // (unpinned) entry is no younger than every surviving unpinned one
        let evicted: Vec<_> = before.difference(&after).collect();
        let max_evicted = evicted.iter().filter_map(|id| stamps.get(*id)).max();
        let min_survivor = after
            .iter()
            .filter(|id| !pins.contains_key(*id))
            .filter_map(|id| stamps.get(id))
            .min();
        if let (Some(max_evicted), Some(min_survivor)) = (max_evicted, min_survivor) {
            assert!(
                max_evicted < min_survivor,
                "LRU order violated: evicted stamp {max_evicted} >= survivor stamp {min_survivor}"
            );
        }

        // the manifest tracks the directory exactly (GC reconciles)
        let manifest_ids: BTreeSet<(String, u64)> =
            store.manifest().entries.iter().map(|e| (e.kind.clone(), e.fingerprint)).collect();
        assert_eq!(manifest_ids, after, "manifest must match the directory after gc");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn gc_and_manifest_invariants_hold_under_random_op_sequences(
            ops in vec(op_strategy(), 1..48),
            final_budget in 0u64..900,
        ) {
            let dir = scratch_dir("prop");
            let store = ArtifactStore::open(&dir).unwrap();
            let pins = run_ops(&store, &ops);

            // final GC must land the store within budget (or pinned-only)
            check_gc(&store, final_budget, &pins);

            // manifest ↔ directory stays consistent through everything,
            // and a repairing doctor leaves a clean store behind
            let report = store.doctor(true).unwrap();
            let clean = store.doctor(false).unwrap();
            prop_assert!(clean.is_clean(), "after repair: {clean:?} (repair pass: {report:?})");
            let manifest_ids: BTreeSet<(String, u64)> = store
                .manifest()
                .entries
                .iter()
                .map(|e| (e.kind.clone(), e.fingerprint))
                .collect();
            prop_assert_eq!(manifest_ids, directory_ids(&store));
            let _ = std::fs::remove_dir_all(store.dir());
        }

        #[test]
        fn unpinned_stores_always_fit_the_budget_after_gc(
            sizes in vec(0usize..200, 1..24),
            budget in 0u64..2000,
        ) {
            let dir = scratch_dir("prop-budget");
            let store = ArtifactStore::open(&dir).unwrap();
            for (i, size) in sizes.iter().enumerate() {
                let key = FingerprintBuilder::new().u64(i as u64).finish();
                store.save(KINDS[i % KINDS.len()], key, &vec![0u8; *size]).unwrap();
            }
            let report = store.gc(budget).unwrap();
            prop_assert!(report.within_budget(), "no pins -> must always fit: {report:?}");
            prop_assert!(entry_file_bytes(&store) <= budget);
            let _ = std::fs::remove_dir_all(store.dir());
        }
    }
}
