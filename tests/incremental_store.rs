//! Incremental campaign-store contracts:
//!
//! * **round-trip equivalence** — a campaign served from a warm store is
//!   byte-identical (compared as `serde_json` strings) to a cold run and to
//!   a store-less run, for a mixed co-optimization and for every degenerate
//!   per-workload mix, at `threads = 1` and `threads = 4`;
//! * **corruption/eviction safety** — truncated or bit-flipped entries are
//!   detected (checksum/version validation), recomputed, and the final
//!   results still match the cold run;
//! * **invalidation precision** — updating one workload of a 4-workload mix
//!   re-captures exactly one trace and re-measures exactly one cost table;
//!   the other three are served from the store;
//! * **zero guest execution** — a fully warm campaign run retires zero
//!   guest instructions (the store turns re-optimization into pure replay/
//!   solver work, and a warm run not even that).
//!
//! The tests share one process-wide lock: the guest-instruction assertion
//! reads a process-global counter, and serialising the campaign runs keeps
//! every delta attributable.

use std::path::PathBuf;
use std::sync::Mutex;

use liquid_autoreconf::apps::{
    benchmark_suite, guest_instructions_executed, Arith, Scale, Workload,
};
use liquid_autoreconf::isa::Program;
use liquid_autoreconf::tuner::{
    ArtifactStore, Campaign, CampaignResult, MeasurementOptions, ParameterSpace, Weights,
};

const MAX_CYCLES: u64 = 400_000_000;
const MIX: [f64; 4] = [0.4, 0.3, 0.2, 0.1];

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "autoreconf-incremental-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine(threads: usize, store: Option<ArtifactStore>) -> Campaign {
    let mut c = Campaign::new()
        .with_space(ParameterSpace::dcache_geometry())
        .with_weights(Weights::runtime_optimized())
        .with_measurement(MeasurementOptions { max_cycles: MAX_CYCLES, threads, use_replay: true });
    if let Some(s) = store {
        c = c.with_store(s);
    }
    c
}

fn json(result: &CampaignResult) -> String {
    serde_json::to_string(result).unwrap()
}

#[test]
fn warm_store_runs_are_byte_identical_to_cold_and_storeless_runs() {
    let _g = lock();
    let suite = benchmark_suite(Scale::Tiny);
    let reference = json(&engine(1, None).run(&suite, &MIX).unwrap());

    let dir = scratch_dir("roundtrip");
    let store = ArtifactStore::open(&dir).unwrap();

    let cold = json(&engine(1, Some(store.clone())).run(&suite, &MIX).unwrap());
    assert_eq!(cold, reference, "a cold store run must not perturb the result");
    assert!(store.stats().writes >= 16, "cold run must persist 4 artifact kinds x 4 workloads");

    let warm1 = json(&engine(1, Some(store.clone())).run(&suite, &MIX).unwrap());
    let warm4 = json(&engine(4, Some(store.clone())).run(&suite, &MIX).unwrap());
    assert_eq!(warm1, reference, "warm (threads=1) must be byte-identical to cold");
    assert_eq!(warm4, reference, "warm (threads=4) must be byte-identical to cold");
    assert_eq!(store.stats().corrupt, 0);

    // a different cycle budget is a different measurement contract: its
    // artifacts must not be served from this store (budget-exhausting runs
    // error/truncate, so cross-budget reuse could diverge from a cold run)
    let other_budget = Campaign::new()
        .with_space(ParameterSpace::dcache_geometry())
        .with_weights(Weights::runtime_optimized())
        .with_measurement(MeasurementOptions {
            max_cycles: MAX_CYCLES * 2,
            threads: 2,
            use_replay: true,
        })
        .with_store(store.clone());
    let c = other_budget.session(&suite).unwrap().counters();
    assert_eq!(c.trace_store_hits, 0, "a changed budget must miss every stored artifact");
    assert_eq!(c.trace_captures, 4);

    // every degenerate per-workload mix, warm vs. store-less
    let warm_session = engine(2, Some(store.clone())).session(&suite).unwrap();
    let plain_session = engine(2, None).session(&suite).unwrap();
    assert_eq!(warm_session.counters().trace_captures, 0, "warm session must not capture");
    for k in 0..suite.len() {
        let mut mix = vec![0.0; suite.len()];
        mix[k] = 1.0;
        assert_eq!(
            json(&warm_session.result(&mix).unwrap()),
            json(&plain_session.result(&mix).unwrap()),
            "degenerate mix on workload {k} must match without a store"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_entries_are_detected_and_recomputed() {
    let _g = lock();
    let suite = benchmark_suite(Scale::Tiny);
    let dir = scratch_dir("corruption");
    let store = ArtifactStore::open(&dir).unwrap();

    let cold = json(&engine(2, Some(store.clone())).run(&suite, &MIX).unwrap());

    // truncate a stored trace mid-payload
    let trace_file = store.entries(Some("trace"))[0].clone();
    let bytes = std::fs::read(&trace_file).unwrap();
    std::fs::write(&trace_file, &bytes[..bytes.len() / 3]).unwrap();

    // flip one bit inside a stored cost table's payload
    let table_file = store.entries(Some("table"))[1].clone();
    let mut bytes = std::fs::read(&table_file).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&table_file, &bytes).unwrap();

    // and replace a sweep entry with garbage that is not even an envelope
    let sweep_file = store.entries(Some("sweep"))[2].clone();
    std::fs::write(&sweep_file, b"not an artifact at all").unwrap();

    let warm_store = ArtifactStore::open(&dir).unwrap();
    let session = engine(2, Some(warm_store.clone())).session(&suite).unwrap();
    let healed = json(&session.result(&MIX).unwrap());
    assert_eq!(healed, cold, "recomputed-after-corruption must equal the cold run");

    let stats = warm_store.stats();
    assert_eq!(stats.corrupt, 3, "all three damaged entries must be detected");
    let c = session.counters();
    assert_eq!(
        (c.trace_captures, c.table_measurements, c.sweeps_computed),
        (1, 1, 1),
        "exactly the damaged artifacts are recomputed"
    );
    assert_eq!(
        (c.trace_store_hits, c.table_store_hits, c.sweep_store_hits),
        (3, 3, 3),
        "the undamaged artifacts are served from the store"
    );

    // the recompute healed the store: a fresh session is fully warm again
    let again = engine(2, Some(ArtifactStore::open(&dir).unwrap())).session(&suite).unwrap();
    assert_eq!(again.counters().trace_captures, 0);
    assert_eq!(json(&again.result(&MIX).unwrap()), cold);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `Arith` under a different registered name: same guest program, different
/// content fingerprint — the cheapest possible "this workload changed"
/// stand-in for the invalidation-precision test.
struct RetaggedArith(Arith);

impl Workload for RetaggedArith {
    fn name(&self) -> &str {
        "Arith-v2"
    }
    fn description(&self) -> &str {
        self.0.description()
    }
    fn build(&self) -> Program {
        self.0.build()
    }
    fn expected_reports(&self) -> Vec<(u16, u32)> {
        self.0.expected_reports()
    }
}

#[test]
fn update_workload_invalidates_exactly_one_entry() {
    let _g = lock();
    let suite = benchmark_suite(Scale::Tiny);
    let dir = scratch_dir("invalidation");
    let store = ArtifactStore::open(&dir).unwrap();

    // cold session populates the store
    let cold_session = engine(2, Some(store.clone())).session(&suite).unwrap();
    let c = cold_session.counters();
    assert_eq!((c.trace_captures, c.table_measurements), (4, 4));
    assert_eq!((c.trace_store_hits, c.table_store_hits), (0, 0));

    // warm session: everything from the store
    let mut session = engine(2, Some(store.clone())).session(&suite).unwrap();
    let c = session.counters();
    assert_eq!((c.trace_captures, c.table_measurements, c.sweeps_computed, c.optimizations_solved), (0, 0, 0, 0));
    assert_eq!((c.trace_store_hits, c.table_store_hits, c.sweep_store_hits, c.optimum_store_hits), (4, 4, 4, 4));

    // update one member of the mix: exactly one trace re-captured, one cost
    // table re-measured; the other three entries are not even re-read
    let replacement = RetaggedArith(Arith::scaled(Scale::Tiny));
    session.update_workload(3, &replacement).unwrap();
    let c = session.counters();
    assert_eq!(
        (c.trace_captures, c.table_measurements, c.sweeps_computed, c.optimizations_solved),
        (1, 1, 1, 1),
        "exactly one of each artifact is re-derived"
    );
    assert_eq!(
        (c.trace_store_hits, c.table_store_hits, c.sweep_store_hits, c.optimum_store_hits),
        (4, 4, 4, 4),
        "the unchanged workloads' artifacts are untouched"
    );
    assert_eq!(session.traces().names()[3], "Arith-v2");

    // the updated session equals a from-scratch (store-less) session over
    // the updated suite, byte for byte
    let mut updated_suite = benchmark_suite(Scale::Tiny);
    updated_suite[3] = Box::new(RetaggedArith(Arith::scaled(Scale::Tiny)));
    let fresh = engine(2, None).session(&updated_suite).unwrap();
    assert_eq!(
        json(&session.result(&MIX).unwrap()),
        json(&fresh.result(&MIX).unwrap()),
        "incremental update must equal a from-scratch derivation"
    );

    // a second update back to the original workload is a pure store hit
    let original = benchmark_suite(Scale::Tiny).remove(3);
    session.update_workload(3, original.as_ref()).unwrap();
    let c = session.counters();
    assert_eq!(c.trace_captures, 1, "reverting must hit the store, not recapture");
    assert_eq!(c.trace_store_hits, 5);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_runs_execute_zero_guest_instructions() {
    let _g = lock();
    let suite = benchmark_suite(Scale::Tiny);
    let dir = scratch_dir("zeroguest");
    let store = ArtifactStore::open(&dir).unwrap();

    // cold: populates the store (and obviously executes guest code)
    let before_cold = guest_instructions_executed();
    let cold = json(&engine(2, Some(store.clone())).run(&suite, &MIX).unwrap());
    assert!(
        guest_instructions_executed() > before_cold,
        "the cold run must execute guest instructions"
    );

    // warm: the whole campaign — including its per-workload pipelines and
    // the final co-optimization — must run without a single guest
    // instruction; validation is trace replay, artifacts come from disk
    let before_warm = guest_instructions_executed();
    let warm = json(&engine(2, Some(store.clone())).run(&suite, &MIX).unwrap());
    assert_eq!(
        guest_instructions_executed(),
        before_warm,
        "a warm-store campaign run must execute zero guest instructions"
    );
    assert_eq!(warm, cold);
    let _ = std::fs::remove_dir_all(&dir);
}
