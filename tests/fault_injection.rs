//! Randomized fault-schedule sweep over the artifact store.
//!
//! Property: under ANY seeded [`FaultPlan`] (injected I/O errors, torn
//! writes, stalled heartbeat renewals, lost claim releases — see
//! `autoreconf::faults`), across 1 or 4 threads of mixed store operations,
//!
//! 1. every load returns the byte-identical expected payload or a miss —
//!    a corrupt payload is NEVER served as valid;
//! 2. every failure is typed (`io::Result` / `Option` / `LeaseWaitTimeout`)
//!    — nothing panics, nothing hangs;
//! 3. after the faults stop, `doctor --repair` restores the store to a
//!    verified-clean state.
//!
//! Plans are scoped to each schedule's scratch store, so the sweep is safe
//! to run beside any other test in this process.  One plan is active per
//! process at a time, which is why the whole sweep is a single `#[test]`.

use std::path::PathBuf;
use std::time::Duration;

use autoreconf::faults::{self, FaultPlan};
use autoreconf::{ArtifactStore, ClaimOutcome, Fingerprint};
use proptest::prelude::*;

/// splitmix64 — the same deterministic generator the seeded plans use, so
/// every payload and operation choice is a pure function of the seed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic per-key payload: length 1..=192, bytes derived from the
/// key, so any byte the store hands back is checkable without bookkeeping.
fn payload_for(key: u64) -> Vec<u8> {
    let len = 1 + (mix(key) % 192) as usize;
    (0..len).map(|i| mix(key ^ i as u64) as u8).collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("autoreconf-faultsweep-{}-{tag}", std::process::id()))
}

/// Run one seeded schedule against one scratch store and check the three
/// invariants.  Returns the directory for cleanup.
fn run_schedule(seed: u64, threads: usize, inject: bool) {
    let dir = scratch_dir(&format!("{seed:016x}-{threads}-{inject}"));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ArtifactStore::open(&dir).expect("open scratch store");
    // every tmp file left behind by an injected fault is immediately
    // collectable — this sweep has no concurrent foreign writer
    store.set_tmp_grace(Duration::ZERO);
    if inject {
        faults::install(FaultPlan::seeded(seed).scoped(&dir));
    }

    let keys: Vec<(Fingerprint, Vec<u8>)> =
        (0..3u64).map(|k| (Fingerprint(mix(seed ^ k)), payload_for(mix(seed ^ k)))).collect();

    std::thread::scope(|scope| {
        for t in 0..threads {
            let store = store.clone();
            let keys = &keys;
            scope.spawn(move || {
                for i in 0..10u64 {
                    let pick = mix(seed ^ (t as u64) << 32 ^ i);
                    let (key, expected) = &keys[(pick % keys.len() as u64) as usize];
                    match pick % 3 {
                        0 => {
                            // invariant 2: failures are typed, never panics
                            let _ = store.save("fault", *key, expected);
                        }
                        1 => {
                            if let Some(got) = store.load("fault", *key) {
                                // invariant 1: never a corrupt payload
                                assert_eq!(
                                    &got, expected,
                                    "corrupt payload served (seed {seed}, thread {t}, op {i})"
                                );
                            }
                        }
                        _ => {
                            match store.try_claim("fault", *key, Duration::from_millis(5)) {
                                Ok(ClaimOutcome::Acquired(lease)) => {
                                    let _ = lease.renew(); // may stall or fail — injected
                                    drop(lease); // release may be lost — injected
                                }
                                Ok(ClaimOutcome::Busy(_)) => {
                                    // bounded wait; a timeout is a typed error
                                    let _ = store.await_entry_or_lease_deadline(
                                        "fault",
                                        *key,
                                        Duration::from_millis(50),
                                    );
                                }
                                Err(_) => {} // typed claim failure, tolerated
                            }
                        }
                    }
                }
            });
        }
    });

    if inject {
        faults::clear();
    }
    // let the millisecond claim TTLs expire so lost-release corpses are
    // repairable debris, not live leases
    std::thread::sleep(Duration::from_millis(20));

    // invariant 3: doctor-clean after repair, whatever the schedule did
    let repaired = store.doctor(true).expect("doctor --repair");
    let verify = store.doctor(false).expect("doctor verify");
    assert!(
        verify.is_clean(),
        "store not clean after repair (seed {seed}, threads {threads}):\n\
         repair pass: {repaired:?}\nverify pass: {verify:?}"
    );

    // whatever survived repair must still load byte-identical
    for (key, expected) in &keys {
        if let Some(got) = store.load("fault", *key) {
            assert_eq!(&got, expected, "corrupt payload served after repair (seed {seed})");
        }
    }

    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(224))]

    /// ≥200 seeded schedules × mixed store operations × 1/4 threads.
    #[test]
    fn any_fault_schedule_is_correct_or_typed_and_repairable(
        seed in any::<u64>(),
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        run_schedule(seed, threads, true);
    }
}

/// Control: the identical workload with injection disabled is fully clean
/// (doctor-clean *without* repair) and every load hits.
#[test]
fn fault_free_control_is_clean_without_repair() {
    let dir = scratch_dir("control");
    let _ = std::fs::remove_dir_all(&dir);
    let store = ArtifactStore::open(&dir).expect("open scratch store");
    let keys: Vec<(Fingerprint, Vec<u8>)> =
        (0..3u64).map(|k| (Fingerprint(mix(0xc0ff_ee ^ k)), payload_for(k))).collect();
    for (key, expected) in &keys {
        store.save("fault", *key, expected).expect("save without faults");
        assert_eq!(store.load("fault", *key).as_deref(), Some(expected.as_slice()));
    }
    let report = store.doctor(false).expect("doctor");
    assert!(report.is_clean(), "fault-free store needed repair: {report:?}");
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The audit counters prove a known-firing schedule actually fired — the
/// sweep above would pass vacuously if injection were broken.
#[test]
fn sweep_audits_injected_faults() {
    let dir = scratch_dir("audit");
    let _ = std::fs::remove_dir_all(&dir);
    let store = ArtifactStore::open(&dir).expect("open scratch store");
    store.set_tmp_grace(Duration::ZERO);
    let before = faults::injected();
    faults::install(
        FaultPlan::new().torn_write(0, 3).fail("store.read", 0).scoped(&dir),
    );
    let key = Fingerprint(0xdead_beef);
    let body = payload_for(key.0);
    store.save("fault", key, &body).expect("torn write still publishes");
    assert_eq!(store.load("fault", key), None, "first load fails by injection");
    assert_eq!(store.load("fault", key), None, "torn entry must never validate");
    faults::clear();
    let after = faults::injected();
    assert_eq!(after.torn_writes - before.torn_writes, 1);
    assert_eq!(after.errors - before.errors, 1);
    let repaired = store.doctor(true).expect("doctor --repair");
    assert!(repaired.corrupt_entries > 0, "torn entry seen by doctor: {repaired:?}");
    assert!(store.doctor(false).expect("verify").is_clean());
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
